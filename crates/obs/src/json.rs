//! A minimal JSON parser.
//!
//! The workspace deliberately carries no serde; snapshots and exporters
//! hand-roll their JSON.  Round-trip tests and the `eris-live`
//! self-check need to *read* that output back, so this module provides
//! a small recursive-descent parser covering the full JSON grammar the
//! renderers produce (objects, arrays, strings with escapes, numbers,
//! booleans, null).

#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object field access (first match; our renderers never duplicate
    /// keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Parse one complete JSON document; trailing non-whitespace is an
/// error.
// HOT-PATH-CUT: report-time JSON parser; reached from the hot
// paths only through method-name collisions, never at runtime.
pub fn parse(input: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing bytes at {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    // HOT-PATH-CUT: report-time JSON parsing, as `parse`.
    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(_) => self.number(),
            None => Err("unexpected end of input".into()),
        }
    }

    // HOT-PATH-CUT: report-time JSON parsing, as `parse`.
    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at {}", self.pos))
        }
    }

    // HOT-PATH-CUT: report-time JSON parsing, as `parse`.
    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                other => return Err(format!("expected ',' or '}}', found {other:?}")),
            }
        }
    }

    // HOT-PATH-CUT: report-time JSON parsing, as `parse`.
    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                other => return Err(format!("expected ',' or ']', found {other:?}")),
            }
        }
    }

    // HOT-PATH-CUT: report-time JSON parsing, as `parse`.
    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("short \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our
                            // renderers; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        other => return Err(format!("bad escape '\\{}'", other as char)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    // HOT-PATH-CUT: report-time JSON parsing, as `parse`.
    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("bad number '{text}' at {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let v = parse(r#"{"a":[1,2.5,-3],"b":{"c":"x\ny","d":true,"e":null}}"#).unwrap();
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[1].as_f64(),
            Some(2.5)
        );
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("b").unwrap().get("d").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("b").unwrap().get("e"), Some(&Value::Null));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,", "{\"a\":}", "tru", "1 2", "\"\\x\""] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn unicode_escapes_decode() {
        let v = parse("\"\\u0041\\u00e9\"").unwrap();
        assert_eq!(v.as_str(), Some("Aé"));
    }
}
