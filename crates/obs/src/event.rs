//! The trace-event taxonomy.
//!
//! Every event is a small `Copy` value so ring writers never allocate on
//! the hot path.  Identifiers are raw integers — `eris-core` owns the
//! typed id wrappers and converts at the emission site.

/// One structured trace event, as emitted at an instrumentation site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// An AEU executed one coalesced `(object, op)` group.
    BatchExecuted {
        object: u32,
        /// Command op tag (same encoding as the wire format).
        op: u8,
        /// Number of commands in the coalesced group.
        batch: u32,
        /// Longest submit→execute wait among the *stamped* commands in
        /// the group (0 when none were sampled).
        queue_wait_ns: u64,
        /// Host-time cost of executing the whole group.
        exec_ns: u64,
    },
    /// An AEU swapped its incoming double buffer and decoded a batch.
    BufferSwap { bytes: u64, commands: u32 },
    /// Commands arrived at a non-owning AEU and were re-routed.
    ForwardedStray { object: u32, count: u32 },
    /// The balancer moved a partition range between AEUs.
    Migration {
        object: u32,
        src: u32,
        dst: u32,
        keys: u64,
        bytes: u64,
    },
    /// A journal group commit made `bytes` durable for one AEU.
    GroupCommit { aeu: u32, bytes: u64 },
    /// A checkpoint crossed a phase boundary (see `PHASE_*` consts).
    CheckpointPhase { seq: u64, phase: u8 },
}

/// Checkpoint started serializing state.
pub const PHASE_BEGIN: u8 = 0;
/// All per-AEU part files written and synced.
pub const PHASE_PARTS_WRITTEN: u8 = 1;
/// Manifest renamed into place; the checkpoint is durable.
pub const PHASE_COMMITTED: u8 = 2;

impl TraceEvent {
    /// Stable kind tag (ring filters, exporter labels).
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::BatchExecuted { .. } => "batch_executed",
            TraceEvent::BufferSwap { .. } => "buffer_swap",
            TraceEvent::ForwardedStray { .. } => "forwarded_stray",
            TraceEvent::Migration { .. } => "migration",
            TraceEvent::GroupCommit { .. } => "group_commit",
            TraceEvent::CheckpointPhase { .. } => "checkpoint_phase",
        }
    }

    /// Render as one JSON object (hand-rolled; the workspace has no
    /// serde).  Keys are stable — the JSONL exporter and `eris-live`
    /// both parse this shape.
    pub fn to_json_fields(&self) -> String {
        match *self {
            TraceEvent::BatchExecuted {
                object,
                op,
                batch,
                queue_wait_ns,
                exec_ns,
            } => format!(
                "\"object\":{object},\"op\":{op},\"batch\":{batch},\
                 \"queue_wait_ns\":{queue_wait_ns},\"exec_ns\":{exec_ns}"
            ),
            TraceEvent::BufferSwap { bytes, commands } => {
                format!("\"bytes\":{bytes},\"commands\":{commands}")
            }
            TraceEvent::ForwardedStray { object, count } => {
                format!("\"object\":{object},\"count\":{count}")
            }
            TraceEvent::Migration {
                object,
                src,
                dst,
                keys,
                bytes,
            } => format!(
                "\"object\":{object},\"src\":{src},\"dst\":{dst},\
                 \"keys\":{keys},\"bytes\":{bytes}"
            ),
            TraceEvent::GroupCommit { aeu, bytes } => {
                format!("\"aeu\":{aeu},\"bytes\":{bytes}")
            }
            TraceEvent::CheckpointPhase { seq, phase } => {
                format!("\"seq\":{seq},\"phase\":{phase}")
            }
        }
    }
}

/// A ring entry: the event plus when (and where) it was emitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stamped {
    /// [`crate::clock::now_ns`] at emission.
    pub at_ns: u64,
    /// Emitting AEU index (or the engine's choice for engine-level
    /// events such as checkpoint phases).
    pub aeu: u32,
    pub event: TraceEvent,
}

impl Stamped {
    /// One JSON-lines record (no trailing newline).
    pub fn to_jsonl(&self) -> String {
        format!(
            "{{\"at_ns\":{},\"aeu\":{},\"kind\":\"{}\",{}}}",
            self.at_ns,
            self.aeu,
            self.event.kind(),
            self.event.to_json_fields()
        )
    }
}

/// Sentinel tenant for stamps originated inside the engine (generator
/// traffic, tests) rather than by a serving-layer request.
pub const TENANT_NONE: u32 = u32::MAX;

/// The sampled end-to-end latency stamp carried through routing with a
/// command (see `eris-core`'s wire-format marker records).  `submit_ns`
/// is the routing-time clock reading; `hops` counts stray forwardings.
///
/// Serving-layer stamps additionally carry the request identity
/// `(tenant, conn, seq)` plus the spans accumulated *before* routing:
/// the network-queue wait and the admission decision.  Engine-originated
/// stamps use [`TraceStamp::engine`], which zeroes those fields and sets
/// `tenant` to [`TENANT_NONE`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceStamp {
    pub submit_ns: u64,
    pub hops: u32,
    /// Originating tenant, or [`TENANT_NONE`] for engine-born stamps.
    pub tenant: u32,
    /// Originating connection id (0 when engine-born).
    pub conn: u32,
    /// Request sequence number on the connection (0 when engine-born).
    pub seq: u64,
    /// Network-queue span: frame arrival to admission, in ns.
    pub net_ns: u32,
    /// Admission span: verdict computation (credit/quota/watermark), ns.
    pub admit_ns: u32,
}

impl TraceStamp {
    /// A stamp born at engine routing time, with no serving-side spans.
    pub fn engine(submit_ns: u64) -> Self {
        TraceStamp {
            submit_ns,
            hops: 0,
            tenant: TENANT_NONE,
            conn: 0,
            seq: 0,
            net_ns: 0,
            admit_ns: 0,
        }
    }

    /// Stable trace id derived from the request identity: FNV-1a over
    /// `(tenant, conn, seq, submit_ns)`.  Exemplars store this id so a
    /// tail-bucket outlier links back to the full-path trace.
    pub fn trace_id(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for word in [
            self.tenant as u64,
            self.conn as u64,
            self.seq,
            self.submit_ns,
        ] {
            for b in word.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_stamps_have_no_serving_identity() {
        let s = TraceStamp::engine(1234);
        assert_eq!(s.submit_ns, 1234);
        assert_eq!(s.tenant, TENANT_NONE);
        assert_eq!(
            (s.conn, s.seq, s.net_ns, s.admit_ns, s.hops),
            (0, 0, 0, 0, 0)
        );
    }

    #[test]
    fn trace_ids_distinguish_requests() {
        let a = TraceStamp {
            tenant: 1,
            conn: 2,
            seq: 3,
            ..TraceStamp::engine(100)
        };
        let b = TraceStamp { seq: 4, ..a };
        let c = TraceStamp { tenant: 2, ..a };
        assert_eq!(a.trace_id(), a.trace_id(), "deterministic");
        assert_ne!(a.trace_id(), b.trace_id());
        assert_ne!(a.trace_id(), c.trace_id());
    }

    #[test]
    fn every_kind_renders_parseable_jsonl() {
        let events = [
            TraceEvent::BatchExecuted {
                object: 1,
                op: 0,
                batch: 64,
                queue_wait_ns: 1200,
                exec_ns: 900,
            },
            TraceEvent::BufferSwap {
                bytes: 4096,
                commands: 141,
            },
            TraceEvent::ForwardedStray {
                object: 2,
                count: 3,
            },
            TraceEvent::Migration {
                object: 7,
                src: 0,
                dst: 5,
                keys: 1000,
                bytes: 16000,
            },
            TraceEvent::GroupCommit { aeu: 3, bytes: 512 },
            TraceEvent::CheckpointPhase { seq: 2, phase: 1 },
        ];
        for (i, e) in events.iter().enumerate() {
            let line = Stamped {
                at_ns: 42,
                aeu: i as u32,
                event: *e,
            }
            .to_jsonl();
            let v = crate::json::parse(&line).expect("parses");
            assert_eq!(v.get("kind").and_then(|k| k.as_str()), Some(e.kind()));
            assert_eq!(v.get("at_ns").and_then(|k| k.as_u64()), Some(42));
        }
    }
}
