//! # eris-obs — observability primitives for the ERIS engine
//!
//! The SIGMOD 2014 source paper is a *demo*: a live monitoring UI over
//! the engine showing per-AEU utilization, per-partition heat, and
//! balancer activity in real time.  This crate provides the plumbing
//! that view is built on, as a **leaf crate** (no dependency on
//! `eris-core`) so the engine, the durability layer, and the harness can
//! all emit into it without a dependency cycle:
//!
//! * [`event`] — the typed trace-event taxonomy ([`TraceEvent`]) and the
//!   wall-clock-stamped form stored in rings ([`Stamped`]).
//! * [`ring`] — [`TraceRing`], a bounded lock-free multi-writer
//!   overwrite-oldest event ring with exact drop accounting
//!   (`emitted == retained + dropped`, always).
//! * [`latency`] — [`LatencyTable`], per-(object, command-kind) latency
//!   histograms decomposing sampled end-to-end command latency into
//!   queue-wait vs execution vs forwarding hops, plus per-tenant
//!   full-path histograms fed by serving-layer traces.
//! * [`exemplar`] — [`ExemplarTable`], one seqlock slot per latency
//!   bucket retaining the most recent trace id + span breakdown so a
//!   tail-bucket outlier links to its full-path trace.
//! * [`slo`] — [`SloEngine`], per-tenant latency/error objectives with
//!   multi-window error-budget burn-rate computation.
//! * [`profiler`] — [`PhaseProfiler`], lock-free per-AEU attribution of
//!   epoch wall time to phases, with a collapsed-stack (flamegraph)
//!   renderer.
//! * [`clock`] — a process-wide monotonic nanosecond clock valid under
//!   both the cooperative and the real-thread runtime.
//! * [`export`] — a neutral [`Metric`] IR with Prometheus text-format
//!   and JSON-lines renderers.
//! * [`json`] — a minimal JSON parser used by round-trip tests and the
//!   `eris-live` self-check (the workspace has no serde).
//!
//! Identifiers cross this crate's boundary as raw integers (`u32`
//! object/AEU ids, `u8` op tags); `eris-core` owns the typed wrappers.

#![deny(unsafe_op_in_unsafe_fn)]

pub mod clock;
pub mod event;
pub mod exemplar;
pub mod export;
pub mod json;
pub mod latency;
pub mod profiler;
pub mod ring;
pub mod slo;

pub use clock::now_ns;
pub use event::{
    Stamped, TraceEvent, TraceStamp, PHASE_BEGIN, PHASE_COMMITTED, PHASE_PARTS_WRITTEN, TENANT_NONE,
};
pub use exemplar::{Exemplar, ExemplarTable};
pub use export::{
    render_events_jsonl, render_jsonl, render_prometheus, HistogramFamily, Metric, MetricKind,
    MetricSample,
};
pub use latency::{LatencyKey, LatencyRecord, LatencySeries, LatencyTable, LogHistogram};
pub use profiler::{collapsed_stack, Phase, PhaseBreakdown, PhaseProfiler, NUM_PHASES};
pub use ring::{RingStats, TraceRing};
pub use slo::{BurnRate, SloConfig, SloEngine, SloTotals};
