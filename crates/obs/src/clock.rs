//! A process-wide monotonic nanosecond clock.
//!
//! Trace stamps must be comparable across threads and across the
//! engine's two runtimes (the cooperative virtual-time loop and the
//! real-thread runtime), so they use one shared wall-clock epoch: the
//! first call pins an [`Instant`] and every later call reports the
//! elapsed nanoseconds since it.  The engine's *virtual* clock is not
//! used — queue-wait and execution times attributed by the tracer are
//! real host-time measurements either way.

use std::sync::OnceLock;
use std::time::Instant;

static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Nanoseconds since the process-wide trace epoch (first call = 0-ish).
pub fn now_ns() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotonic_across_threads() {
        let a = now_ns();
        let b = std::thread::spawn(now_ns).join().unwrap();
        let c = now_ns();
        assert!(a <= b && b <= c, "{a} <= {b} <= {c}");
    }
}
