//! Per-(object, command-kind) latency attribution.
//!
//! The engine stamps 1-in-N submitted commands at routing time (see
//! `eris-core`'s trace-marker wire records); the AEU that finally
//! executes a stamped command records it here, decomposing the end-to-
//! end latency into **queue wait** (submit → start of the coalesced
//! batch), **execution** (the batch's host-time cost) and **forwarding
//! hops** (how many times the command was re-routed as a stray).
//!
//! Histograms are log2-bucketed: bucket `b` holds values in
//! `[2^b, 2^(b+1))` (bucket 0 also holds 0).  32 buckets cover ~4.3 s
//! in nanoseconds, far beyond any sane command latency.

use parking_lot::Mutex;
use std::collections::HashMap;
// ordering: Relaxed is the only ordering this module imports — bucket
// counters are monotonic and independent; readers accept transient
// skew between buckets (documented on `LatencySeries`).
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// Number of log2 buckets per histogram.
pub const LATENCY_BUCKETS: usize = 32;

/// Bucket index for a value: `floor(log2(v))`, saturated.
pub fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        ((63 - v.leading_zeros()) as usize).min(LATENCY_BUCKETS - 1)
    }
}

/// Inclusive upper bound of bucket `b` (Prometheus `le` label).
pub fn bucket_le(b: usize) -> u64 {
    (1u64 << (b + 1)) - 1
}

/// A plain log2 histogram (no interior mutability; lives under the
/// table's mutex).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogHistogram {
    pub buckets: [u64; LATENCY_BUCKETS],
    pub count: u64,
    pub sum: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram {
            buckets: [0; LATENCY_BUCKETS],
            count: 0,
            sum: 0,
        }
    }
}

impl LogHistogram {
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_of(v)] += 1;
        self.count += 1;
        self.sum += v;
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the bucket holding the `q`-quantile sample
    /// (`q` in `[0, 1]`), i.e. a conservative estimate: the true value lies
    /// in the same bucket, so the estimate is within one log2 bucket of
    /// truth by construction.  Returns 0 for an empty histogram.
    pub fn quantile_le(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_le(b);
            }
        }
        bucket_le(LATENCY_BUCKETS - 1)
    }

    /// Median estimate (bucket upper bound).
    pub fn p50(&self) -> u64 {
        self.quantile_le(0.50)
    }

    /// 99th-percentile estimate (bucket upper bound).
    pub fn p99(&self) -> u64 {
        self.quantile_le(0.99)
    }
}

/// Key of one latency series: (object id, command op tag).
pub type LatencyKey = (u32, u8);

/// The decomposed latency record of one traced command.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyRecord {
    pub queue_wait_ns: u64,
    pub exec_ns: u64,
    pub hops: u32,
}

#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LatencySeries {
    pub queue_wait: LogHistogram,
    pub exec: LogHistogram,
    pub hops: LogHistogram,
}

/// Engine-wide sampled-latency table.
///
/// Writers are the executing AEUs (plus drop accounting from discard
/// paths); the map mutex is effectively uncontended — a stamped command
/// arrives every N-th submission, and each record is a few adds.  The
/// stamped/traced/dropped conservation counters are atomics so readers
/// can check the ledger without the lock.
#[derive(Debug, Default)]
pub struct LatencyTable {
    series: Mutex<HashMap<LatencyKey, LatencySeries>>,
    /// Commands stamped at routing time.
    stamped: AtomicU64,
    /// Stamped commands whose latency was recorded at execution.
    traced: AtomicU64,
    /// Stamped commands discarded before execution (e.g. an incoming
    /// buffer dropped in a crash-injection run).
    dropped: AtomicU64,
}

impl LatencyTable {
    pub fn on_stamped(&self) {
        self.stamped.fetch_add(1, Relaxed);
    }

    pub fn on_dropped(&self, n: u64) {
        self.dropped.fetch_add(n, Relaxed);
    }

    /// Record one traced command's decomposition.
    pub fn record(&self, key: LatencyKey, rec: LatencyRecord) {
        self.traced.fetch_add(1, Relaxed);
        let mut map = self.series.lock();
        let s = map.entry(key).or_default();
        s.queue_wait.record(rec.queue_wait_ns);
        s.exec.record(rec.exec_ns);
        s.hops.record(rec.hops as u64);
    }

    /// `(stamped, traced, dropped)` — conservation requires
    /// `stamped == traced + dropped` once the engine is drained.
    pub fn ledger(&self) -> (u64, u64, u64) {
        (
            self.stamped.load(Relaxed),
            self.traced.load(Relaxed),
            self.dropped.load(Relaxed),
        )
    }

    /// Copy of every series, sorted by key for deterministic output.
    pub fn snapshot(&self) -> Vec<(LatencyKey, LatencySeries)> {
        let map = self.series.lock();
        let mut out: Vec<_> = map.iter().map(|(k, v)| (*k, v.clone())).collect();
        out.sort_by_key(|(k, _)| *k);
        out
    }

    pub fn reset(&self) {
        let mut map = self.series.lock();
        map.clear();
        self.stamped.store(0, Relaxed);
        self.traced.store(0, Relaxed);
        self.dropped.store(0, Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2_with_saturation() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 1);
        assert_eq!(bucket_of(1024), 10);
        assert_eq!(bucket_of(u64::MAX), LATENCY_BUCKETS - 1);
        assert_eq!(bucket_le(0), 1);
        assert_eq!(bucket_le(10), 2047);
    }

    /// Exact quantile over raw samples using the same rank rule the
    /// histogram uses: the rank-th smallest sample, rank = ceil(q·n).
    fn exact_quantile(samples: &[u64], q: f64) -> u64 {
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    /// The histogram estimate must land in the same log2 bucket as the
    /// exact-sorted oracle: estimate = bucket_le(bucket_of(truth)).
    fn assert_within_one_bucket(samples: &[u64], q: f64) {
        let mut h = LogHistogram::default();
        for &s in samples {
            h.record(s);
        }
        let est = h.quantile_le(q);
        let truth = exact_quantile(samples, q);
        assert_eq!(
            est,
            bucket_le(bucket_of(truth)),
            "q={q}: estimate {est} not in truth's bucket (truth {truth})"
        );
        assert!(est >= truth, "upper bound must dominate truth");
    }

    #[test]
    fn quantiles_match_sorted_oracle_within_one_bucket() {
        // A deterministic long-tailed stream: mostly small, rare spikes.
        let mut x = 0x2545_F491_4F6C_DD1Du64;
        let mut samples = Vec::with_capacity(10_000);
        for _ in 0..10_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let v = if x % 100 < 97 {
                x % 4_096
            } else {
                x % 10_000_000
            };
            samples.push(v);
        }
        for q in [0.0, 0.01, 0.25, 0.50, 0.90, 0.99, 0.999, 1.0] {
            assert_within_one_bucket(&samples, q);
        }
    }

    #[test]
    fn quantile_edge_cases() {
        let empty = LogHistogram::default();
        assert_eq!(empty.quantile_le(0.5), 0);
        assert_eq!(empty.p50(), 0);
        assert_eq!(empty.p99(), 0);

        let mut one = LogHistogram::default();
        one.record(777);
        assert_eq!(one.p50(), bucket_le(bucket_of(777)));
        assert_eq!(one.p99(), one.p50());

        // All-zero samples sit in bucket 0.
        let mut zeros = LogHistogram::default();
        for _ in 0..100 {
            zeros.record(0);
        }
        assert_eq!(zeros.p99(), bucket_le(0));

        // Quantiles are monotone in q.
        let mut h = LogHistogram::default();
        for v in [1u64, 10, 100, 1_000, 10_000, 100_000] {
            for _ in 0..10 {
                h.record(v);
            }
        }
        let mut last = 0;
        for q in [0.1, 0.3, 0.5, 0.7, 0.9, 0.99] {
            let e = h.quantile_le(q);
            assert!(e >= last);
            last = e;
        }
        assert!(h.p50() <= h.p99());
    }

    #[test]
    fn quantile_saturates_at_the_top_bucket() {
        let mut h = LogHistogram::default();
        h.record(u64::MAX);
        assert_eq!(h.p99(), bucket_le(LATENCY_BUCKETS - 1));
    }

    #[test]
    fn ledger_accounts_for_every_stamp() {
        let t = LatencyTable::default();
        for _ in 0..10 {
            t.on_stamped();
        }
        for i in 0..7u64 {
            t.record(
                (1, 0),
                LatencyRecord {
                    queue_wait_ns: i * 100,
                    exec_ns: i * 10,
                    hops: (i % 2) as u32,
                },
            );
        }
        t.on_dropped(3);
        let (stamped, traced, dropped) = t.ledger();
        assert_eq!(stamped, traced + dropped);
        let snap = t.snapshot();
        assert_eq!(snap.len(), 1);
        let (_, s) = &snap[0];
        assert_eq!(s.queue_wait.count, 7);
        assert_eq!(s.exec.count, 7);
        assert_eq!(s.hops.count, 7);
        assert!(s.queue_wait.mean() > 0.0);
    }
}
