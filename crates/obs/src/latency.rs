//! Per-(object, command-kind) latency attribution.
//!
//! The engine stamps 1-in-N submitted commands at routing time (see
//! `eris-core`'s trace-marker wire records); the AEU that finally
//! executes a stamped command records it here, decomposing the end-to-
//! end latency into **queue wait** (submit → start of the coalesced
//! batch), **execution** (the batch's host-time cost) and **forwarding
//! hops** (how many times the command was re-routed as a stray).
//!
//! Serving-layer traces (originated by `eris-server` at frame decode)
//! additionally carry the **network-queue** and **admission** spans and
//! a `(tenant, conn, seq)` identity; those land in per-tenant full-path
//! histograms and per-bucket [`Exemplar`] slots so a tail outlier in
//! the export links back to its complete span breakdown.
//!
//! Histograms are log2-bucketed: bucket `b` holds values in
//! `[2^b, 2^(b+1))` (bucket 0 also holds 0).  32 buckets cover ~4.3 s
//! in nanoseconds, far beyond any sane command latency.

use crate::event::TENANT_NONE;
use crate::exemplar::{Exemplar, ExemplarTable};
use parking_lot::Mutex;
use std::collections::HashMap;
// ordering: Relaxed is the only ordering this module imports — bucket
// counters are monotonic and independent; readers accept transient
// skew between buckets (documented on `LatencySeries`).
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// Number of log2 buckets per histogram.
pub const LATENCY_BUCKETS: usize = 32;

/// Bucket index for a value: `floor(log2(v))`, saturated.
pub fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        ((63 - v.leading_zeros()) as usize).min(LATENCY_BUCKETS - 1)
    }
}

/// Inclusive upper bound of bucket `b` (Prometheus `le` label).
pub fn bucket_le(b: usize) -> u64 {
    (1u64 << (b + 1)) - 1
}

/// A plain log2 histogram (no interior mutability; lives under the
/// table's mutex).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogHistogram {
    pub buckets: [u64; LATENCY_BUCKETS],
    pub count: u64,
    pub sum: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram {
            buckets: [0; LATENCY_BUCKETS],
            count: 0,
            sum: 0,
        }
    }
}

impl LogHistogram {
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_of(v)] += 1;
        self.count += 1;
        self.sum += v;
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the bucket holding the `q`-quantile sample
    /// (`q` in `[0, 1]`), i.e. a conservative estimate: the true value lies
    /// in the same bucket, so the estimate is within one log2 bucket of
    /// truth by construction.  Returns 0 for an empty histogram.
    pub fn quantile_le(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_le(b);
            }
        }
        bucket_le(LATENCY_BUCKETS - 1)
    }

    /// Median estimate (bucket upper bound).
    pub fn p50(&self) -> u64 {
        self.quantile_le(0.50)
    }

    /// 99th-percentile estimate (bucket upper bound).
    pub fn p99(&self) -> u64 {
        self.quantile_le(0.99)
    }

    /// Number of recorded samples that *may* exceed `threshold`: the
    /// population of every bucket whose inclusive upper bound is above
    /// it.  Conservative by at most one log2 bucket (a sample in the
    /// straddling bucket counts as bad even if it was just under) —
    /// the SLO engine prefers over-counting badness to under-counting.
    pub fn count_over(&self, threshold: u64) -> u64 {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(b, _)| bucket_le(*b) > threshold)
            .map(|(_, &n)| n)
            .sum()
    }
}

/// Key of one latency series: (object id, command op tag).
pub type LatencyKey = (u32, u8);

/// The decomposed latency record of one traced command.
///
/// Engine-born traces leave the serving-side fields at their defaults
/// (`tenant == TENANT_NONE`, zero net/admit spans, `trace_id` 0 is
/// accepted but serving traces carry `TraceStamp::trace_id`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyRecord {
    pub queue_wait_ns: u64,
    pub exec_ns: u64,
    pub hops: u32,
    /// Network-queue span (frame arrival → admission), serving only.
    pub net_ns: u64,
    /// Admission-verdict span, serving only.
    pub admit_ns: u64,
    /// Stable trace id (see `TraceStamp::trace_id`), 0 if unset.
    pub trace_id: u64,
    /// Originating tenant, [`TENANT_NONE`] when engine-born.
    pub tenant: u32,
}

impl Default for LatencyRecord {
    fn default() -> Self {
        LatencyRecord {
            queue_wait_ns: 0,
            exec_ns: 0,
            hops: 0,
            net_ns: 0,
            admit_ns: 0,
            trace_id: 0,
            tenant: TENANT_NONE,
        }
    }
}

impl LatencyRecord {
    /// Full-path latency: every span the trace accumulated.
    pub fn total_ns(&self) -> u64 {
        self.net_ns + self.admit_ns + self.queue_wait_ns + self.exec_ns
    }
}

#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LatencySeries {
    pub queue_wait: LogHistogram,
    pub exec: LogHistogram,
    pub hops: LogHistogram,
}

/// Engine-wide sampled-latency table.
///
/// Writers are the executing AEUs (plus drop accounting from discard
/// paths); the map mutex is effectively uncontended — a stamped command
/// arrives every N-th submission, and each record is a few adds.  The
/// stamped/traced/dropped conservation counters are atomics so readers
/// can check the ledger without the lock.
#[derive(Debug, Default)]
pub struct LatencyTable {
    series: Mutex<HashMap<LatencyKey, LatencySeries>>,
    /// Per-tenant full-path (net + admit + queue + exec) histograms,
    /// fed only by serving-layer traces (`tenant != TENANT_NONE`).
    tenant_full: Mutex<HashMap<u32, LogHistogram>>,
    /// Per-bucket most-recent-trace exemplars for the full-path
    /// histogram (seqlock slots, read lock-free by exporters).
    exemplars: ExemplarTable,
    /// Commands stamped at routing time.
    stamped: AtomicU64,
    /// Stamped commands whose latency was recorded at execution.
    traced: AtomicU64,
    /// Stamped commands discarded before execution (e.g. an incoming
    /// buffer dropped in a crash-injection run, or a serving-side
    /// shed/denial after the stamp was charged).
    dropped: AtomicU64,
}

impl LatencyTable {
    pub fn on_stamped(&self) {
        self.stamped.fetch_add(1, Relaxed);
    }

    pub fn on_dropped(&self, n: u64) {
        self.dropped.fetch_add(n, Relaxed);
    }

    /// Record one traced command's decomposition.
    pub fn record(&self, key: LatencyKey, rec: LatencyRecord) {
        self.traced.fetch_add(1, Relaxed);
        let total = rec.total_ns();
        {
            let mut map = self.series.lock();
            let s = map.entry(key).or_default();
            s.queue_wait.record(rec.queue_wait_ns);
            s.exec.record(rec.exec_ns);
            s.hops.record(rec.hops as u64);
        }
        if rec.tenant != TENANT_NONE {
            self.tenant_full
                .lock()
                .entry(rec.tenant)
                .or_default()
                .record(total);
        }
        self.exemplars.record(
            bucket_of(total),
            Exemplar {
                trace_id: rec.trace_id,
                at_ns: crate::clock::now_ns(),
                total_ns: total,
                net_ns: rec.net_ns,
                admit_ns: rec.admit_ns,
                queue_ns: rec.queue_wait_ns,
                exec_ns: rec.exec_ns,
                hops: rec.hops,
                tenant: rec.tenant,
            },
        );
    }

    /// `(stamped, traced, dropped)` — conservation requires
    /// `stamped == traced + dropped` once the engine is drained.
    pub fn ledger(&self) -> (u64, u64, u64) {
        (
            self.stamped.load(Relaxed),
            self.traced.load(Relaxed),
            self.dropped.load(Relaxed),
        )
    }

    /// Copy of every series, sorted by key for deterministic output.
    pub fn snapshot(&self) -> Vec<(LatencyKey, LatencySeries)> {
        let map = self.series.lock();
        let mut out: Vec<_> = map.iter().map(|(k, v)| (*k, v.clone())).collect();
        out.sort_by_key(|(k, _)| *k);
        out
    }

    /// Per-tenant full-path histograms, sorted by tenant id.
    pub fn tenant_snapshot(&self) -> Vec<(u32, LogHistogram)> {
        let map = self.tenant_full.lock();
        let mut out: Vec<_> = map.iter().map(|(k, v)| (*k, v.clone())).collect();
        out.sort_by_key(|(k, _)| *k);
        out
    }

    /// Per-bucket exemplars of the full-path histogram (`None` = the
    /// bucket never received a traced command).
    pub fn exemplars(&self) -> Vec<Option<Exemplar>> {
        self.exemplars.snapshot()
    }

    pub fn reset(&self) {
        let mut map = self.series.lock();
        map.clear();
        self.tenant_full.lock().clear();
        self.exemplars.reset();
        self.stamped.store(0, Relaxed);
        self.traced.store(0, Relaxed);
        self.dropped.store(0, Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2_with_saturation() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 1);
        assert_eq!(bucket_of(1024), 10);
        assert_eq!(bucket_of(u64::MAX), LATENCY_BUCKETS - 1);
        assert_eq!(bucket_le(0), 1);
        assert_eq!(bucket_le(10), 2047);
    }

    /// Exact quantile over raw samples using the same rank rule the
    /// histogram uses: the rank-th smallest sample, rank = ceil(q·n).
    fn exact_quantile(samples: &[u64], q: f64) -> u64 {
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    /// The histogram estimate must land in the same log2 bucket as the
    /// exact-sorted oracle: estimate = bucket_le(bucket_of(truth)).
    fn assert_within_one_bucket(samples: &[u64], q: f64) {
        let mut h = LogHistogram::default();
        for &s in samples {
            h.record(s);
        }
        let est = h.quantile_le(q);
        let truth = exact_quantile(samples, q);
        assert_eq!(
            est,
            bucket_le(bucket_of(truth)),
            "q={q}: estimate {est} not in truth's bucket (truth {truth})"
        );
        assert!(est >= truth, "upper bound must dominate truth");
    }

    #[test]
    fn quantiles_match_sorted_oracle_within_one_bucket() {
        // A deterministic long-tailed stream: mostly small, rare spikes.
        let mut x = 0x2545_F491_4F6C_DD1Du64;
        let mut samples = Vec::with_capacity(10_000);
        for _ in 0..10_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let v = if x % 100 < 97 {
                x % 4_096
            } else {
                x % 10_000_000
            };
            samples.push(v);
        }
        for q in [0.0, 0.01, 0.25, 0.50, 0.90, 0.99, 0.999, 1.0] {
            assert_within_one_bucket(&samples, q);
        }
    }

    #[test]
    fn quantile_edge_cases() {
        let empty = LogHistogram::default();
        assert_eq!(empty.quantile_le(0.5), 0);
        assert_eq!(empty.p50(), 0);
        assert_eq!(empty.p99(), 0);

        let mut one = LogHistogram::default();
        one.record(777);
        assert_eq!(one.p50(), bucket_le(bucket_of(777)));
        assert_eq!(one.p99(), one.p50());

        // All-zero samples sit in bucket 0.
        let mut zeros = LogHistogram::default();
        for _ in 0..100 {
            zeros.record(0);
        }
        assert_eq!(zeros.p99(), bucket_le(0));

        // Quantiles are monotone in q.
        let mut h = LogHistogram::default();
        for v in [1u64, 10, 100, 1_000, 10_000, 100_000] {
            for _ in 0..10 {
                h.record(v);
            }
        }
        let mut last = 0;
        for q in [0.1, 0.3, 0.5, 0.7, 0.9, 0.99] {
            let e = h.quantile_le(q);
            assert!(e >= last);
            last = e;
        }
        assert!(h.p50() <= h.p99());
    }

    #[test]
    fn quantile_saturates_at_the_top_bucket() {
        let mut h = LogHistogram::default();
        h.record(u64::MAX);
        assert_eq!(h.p99(), bucket_le(LATENCY_BUCKETS - 1));
    }

    #[test]
    fn ledger_accounts_for_every_stamp() {
        let t = LatencyTable::default();
        for _ in 0..10 {
            t.on_stamped();
        }
        for i in 0..7u64 {
            t.record(
                (1, 0),
                LatencyRecord {
                    queue_wait_ns: i * 100,
                    exec_ns: i * 10,
                    hops: (i % 2) as u32,
                    ..LatencyRecord::default()
                },
            );
        }
        t.on_dropped(3);
        let (stamped, traced, dropped) = t.ledger();
        assert_eq!(stamped, traced + dropped);
        let snap = t.snapshot();
        assert_eq!(snap.len(), 1);
        let (_, s) = &snap[0];
        assert_eq!(s.queue_wait.count, 7);
        assert_eq!(s.exec.count, 7);
        assert_eq!(s.hops.count, 7);
        assert!(s.queue_wait.mean() > 0.0);
    }

    #[test]
    fn count_over_is_conservative_within_one_bucket() {
        let mut h = LogHistogram::default();
        for v in [10u64, 100, 1_000, 10_000, 100_000] {
            h.record(v);
        }
        // Exactly at a bucket upper bound: buckets strictly above count.
        assert_eq!(h.count_over(bucket_le(bucket_of(1_000))), 2);
        // Far below everything / above everything.
        assert_eq!(h.count_over(0), 5);
        assert_eq!(h.count_over(u64::MAX), 0);
        // A threshold inside a bucket counts that whole bucket as bad
        // (over-estimate, never under): 70_000 shares 100_000's log2
        // bucket, so the 100_000 sample counts even though 70_000 < it.
        assert_eq!(h.count_over(70_000), 1);
        assert_eq!(LogHistogram::default().count_over(0), 0);
    }

    #[test]
    fn serving_records_feed_tenant_histograms_and_exemplars() {
        let t = LatencyTable::default();
        // Engine-born record: no tenant series, but an exemplar.
        t.on_stamped();
        t.record(
            (1, 0),
            LatencyRecord {
                queue_wait_ns: 50,
                exec_ns: 14,
                ..LatencyRecord::default()
            },
        );
        assert!(t.tenant_snapshot().is_empty());

        // Serving-born record with all four spans.
        let rec = LatencyRecord {
            queue_wait_ns: 300,
            exec_ns: 100,
            hops: 1,
            net_ns: 2_000,
            admit_ns: 600,
            trace_id: 0xdead_beef,
            tenant: 7,
        };
        t.on_stamped();
        t.record((1, 0), rec);

        let tenants = t.tenant_snapshot();
        assert_eq!(tenants.len(), 1);
        assert_eq!(tenants[0].0, 7);
        assert_eq!(tenants[0].1.count, 1);
        assert_eq!(tenants[0].1.sum, rec.total_ns());

        let ex = t.exemplars()[bucket_of(rec.total_ns())].expect("exemplar retained");
        assert_eq!(ex.trace_id, 0xdead_beef);
        assert_eq!(ex.tenant, 7);
        assert_eq!(ex.net_ns, 2_000);
        assert_eq!(ex.admit_ns, 600);
        assert_eq!(
            ex.total_ns,
            ex.net_ns + ex.admit_ns + ex.queue_ns + ex.exec_ns
        );

        t.reset();
        assert!(t.tenant_snapshot().is_empty());
        assert!(t.exemplars().iter().all(|e| e.is_none()));
    }
}
