//! Per-AEU epoch profiler: lock-free attribution of each epoch's wall
//! time to coarse execution phases.
//!
//! Each AEU owns one [`PhaseProfiler`] in its telemetry shard and
//! charges host-clock nanoseconds to a [`Phase`] as it moves through an
//! epoch: reading + admitting input, routing, the three kernel shapes,
//! flushing outgoing buffers, and whatever wall time remains as idle.
//! Because the AEU charges `idle` as `wall - attributed` at the end of
//! every step, the per-AEU phase fractions sum to 100% of measured wall
//! time by construction — the `server` experiment asserts that.
//!
//! Counters are relaxed atomics: single writer (the owning AEU), racy
//! readers (exporters) that tolerate transient skew between phases, the
//! same contract as the telemetry counter shards.
//!
//! The [`collapsed_stack`] renderer emits the one-line-per-stack text
//! format consumed by flamegraph tooling (`aeu3;probe 12345`).

// ordering: Relaxed is the only ordering this module uses — phase
// counters are monotonic and independent; readers accept transient
// skew between phases (same contract as the telemetry counter shards).
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// The epoch phases wall time is attributed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Phase {
    /// Swapping the incoming double buffer, decoding, admitting input
    /// (server-side: frame reads + admission verdicts on the pump).
    ReadAdmit = 0,
    /// Routing decisions and stray re-forwarding.
    Route = 1,
    /// Chunked column-scan kernels.
    ScanKernel = 2,
    /// Hash/index probe kernels (lookups).
    Probe = 3,
    /// Write/upsert application.
    Write = 4,
    /// Flushing outgoing routing buffers (server-side: settling
    /// responses back onto connections).
    Flush = 5,
    /// Wall time inside the epoch not attributed to any phase above.
    Idle = 6,
}

/// Number of phases (length of [`Phase::ALL`]).
pub const NUM_PHASES: usize = 7;

impl Phase {
    /// Every phase, in export order.
    pub const ALL: [Phase; NUM_PHASES] = [
        Phase::ReadAdmit,
        Phase::Route,
        Phase::ScanKernel,
        Phase::Probe,
        Phase::Write,
        Phase::Flush,
        Phase::Idle,
    ];

    /// Stable label (metric label values, collapsed-stack frames).
    pub fn name(self) -> &'static str {
        match self {
            Phase::ReadAdmit => "read_admit",
            Phase::Route => "route",
            Phase::ScanKernel => "scan_kernel",
            Phase::Probe => "probe",
            Phase::Write => "write",
            Phase::Flush => "flush",
            Phase::Idle => "idle",
        }
    }
}

/// Lock-free per-AEU phase-time accumulator.
#[derive(Debug, Default)]
pub struct PhaseProfiler {
    ns: [AtomicU64; NUM_PHASES],
}

impl PhaseProfiler {
    /// Charge `ns` nanoseconds of wall time to `phase`.
    pub fn add(&self, phase: Phase, ns: u64) {
        // ordering: Relaxed — monotonic counter, single logical writer.
        // BOUNDS: Phase is a fieldless enum indexing an array sized
        // Phase::ALL.len().
        self.ns[phase as usize].fetch_add(ns, Relaxed);
    }

    /// Racy copy of the accumulated phase times.
    pub fn snapshot(&self) -> PhaseBreakdown {
        let mut out = [0u64; NUM_PHASES];
        for (o, c) in out.iter_mut().zip(self.ns.iter()) {
            // ordering: Relaxed — readers accept skew between phases.
            *o = c.load(Relaxed);
        }
        PhaseBreakdown { ns: out }
    }

    pub fn reset(&self) {
        for c in self.ns.iter() {
            // ordering: Relaxed — reset happens at quiescent points.
            c.store(0, Relaxed);
        }
    }
}

/// One AEU's snapshot of phase times, indexed by `Phase as usize`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseBreakdown {
    pub ns: [u64; NUM_PHASES],
}

impl PhaseBreakdown {
    /// Nanoseconds charged to one phase.
    pub fn get(&self, phase: Phase) -> u64 {
        // BOUNDS: Phase indexes an array sized Phase::ALL.len().
        self.ns[phase as usize]
    }

    /// Total attributed wall time across every phase (== measured epoch
    /// wall time, since the AEU charges the remainder to `Idle`).
    pub fn total_ns(&self) -> u64 {
        self.ns.iter().sum()
    }

    /// Fraction of total wall time spent in `phase` (`0.0` when no time
    /// has been attributed at all).
    pub fn fraction(&self, phase: Phase) -> f64 {
        let total = self.total_ns();
        if total == 0 {
            0.0
        } else {
            self.get(phase) as f64 / total as f64
        }
    }
}

/// Render per-AEU phase breakdowns as collapsed-stack text — one
/// `aeu{i};{phase} {ns}` line per nonzero (AEU, phase) pair — the input
/// format of `flamegraph.pl` / `inferno-flamegraph`.
pub fn collapsed_stack(profiles: &[PhaseBreakdown]) -> String {
    let mut out = String::new();
    for (aeu, p) in profiles.iter().enumerate() {
        for phase in Phase::ALL {
            let ns = p.get(phase);
            if ns > 0 {
                out.push_str(&format!("aeu{aeu};{} {ns}\n", phase.name()));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_accumulate_and_fractions_sum_to_one() {
        let p = PhaseProfiler::default();
        p.add(Phase::ReadAdmit, 100);
        p.add(Phase::Probe, 250);
        p.add(Phase::Probe, 250);
        p.add(Phase::Idle, 400);
        let snap = p.snapshot();
        assert_eq!(snap.get(Phase::Probe), 500);
        assert_eq!(snap.total_ns(), 1_000);
        let total: f64 = Phase::ALL.iter().map(|&ph| snap.fraction(ph)).sum();
        assert!((total - 1.0).abs() < 1e-9, "fractions sum to {total}");
        p.reset();
        assert_eq!(p.snapshot().total_ns(), 0);
        assert_eq!(p.snapshot().fraction(Phase::Probe), 0.0);
    }

    #[test]
    fn collapsed_stack_emits_one_line_per_nonzero_phase() {
        let a = PhaseProfiler::default();
        a.add(Phase::ScanKernel, 7_000);
        a.add(Phase::Idle, 3_000);
        let b = PhaseProfiler::default();
        b.add(Phase::Flush, 42);
        let text = collapsed_stack(&[a.snapshot(), b.snapshot()]);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(
            lines,
            vec!["aeu0;scan_kernel 7000", "aeu0;idle 3000", "aeu1;flush 42"]
        );
        // Every line parses as `stack space value` for flamegraph tools.
        for l in lines {
            let (stack, v) = l.rsplit_once(' ').unwrap();
            assert!(stack.contains(';'));
            v.parse::<u64>().unwrap();
        }
        assert_eq!(collapsed_stack(&[]), "");
    }

    #[test]
    fn phase_names_are_unique_and_stable() {
        let names: Vec<_> = Phase::ALL.iter().map(|p| p.name()).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), NUM_PHASES);
        assert_eq!(Phase::ALL[Phase::Idle as usize], Phase::Idle);
    }
}
