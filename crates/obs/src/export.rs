//! Exporters: a neutral metric IR rendered to Prometheus text format or
//! JSON-lines.
//!
//! `eris-core` converts its `TelemetrySnapshot` into `Vec<Metric>`;
//! rendering lives here so the format logic (naming, HELP/TYPE lines,
//! label escaping) has one owner and one golden test, independent of
//! the engine.

use crate::event::Stamped;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    Counter,
    Gauge,
}

impl MetricKind {
    fn as_str(&self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
        }
    }
}

/// One labelled sample of a metric family.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSample {
    pub labels: Vec<(String, String)>,
    pub value: f64,
}

impl MetricSample {
    pub fn new(labels: &[(&str, &str)], value: f64) -> Self {
        MetricSample {
            labels: labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            value,
        }
    }
}

/// One metric family: a name, help text, a kind, and its samples.
#[derive(Debug, Clone, PartialEq)]
pub struct Metric {
    pub name: String,
    pub help: String,
    pub kind: MetricKind,
    pub samples: Vec<MetricSample>,
}

impl Metric {
    pub fn new(name: &str, help: &str, kind: MetricKind) -> Self {
        Metric {
            name: name.to_string(),
            help: help.to_string(),
            kind,
            samples: Vec::new(),
        }
    }

    pub fn sample(mut self, labels: &[(&str, &str)], value: f64) -> Self {
        self.samples.push(MetricSample::new(labels, value));
        self
    }
}

/// Escape a HELP line: Prometheus requires `\\` and `\n` escapes.
fn escape_help(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Escape a label value: `\\`, `\"`, and `\n`.
fn escape_label(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Render a value the way Prometheus expects: integers without a
/// fractional tail, everything else in shortest-roundtrip float form.
fn fmt_value(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 9.0e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Render metric families in the Prometheus text exposition format.
pub fn render_prometheus(metrics: &[Metric]) -> String {
    let mut out = String::new();
    for m in metrics {
        out.push_str("# HELP ");
        out.push_str(&m.name);
        out.push(' ');
        out.push_str(&escape_help(&m.help));
        out.push('\n');
        out.push_str("# TYPE ");
        out.push_str(&m.name);
        out.push(' ');
        out.push_str(m.kind.as_str());
        out.push('\n');
        for s in &m.samples {
            out.push_str(&m.name);
            if !s.labels.is_empty() {
                out.push('{');
                for (i, (k, v)) in s.labels.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(k);
                    out.push_str("=\"");
                    out.push_str(&escape_label(v));
                    out.push('"');
                }
                out.push('}');
            }
            out.push(' ');
            out.push_str(&fmt_value(s.value));
            out.push('\n');
        }
    }
    out
}

/// Render metric samples as JSON-lines: one object per sample, stamped
/// with `at_ns` so successive exports form a time series.
pub fn render_jsonl(metrics: &[Metric], at_ns: u64) -> String {
    let mut out = String::new();
    for m in metrics {
        for s in &m.samples {
            out.push_str(&format!(
                "{{\"at_ns\":{at_ns},\"metric\":\"{}\",\"kind\":\"{}\",\"labels\":{{",
                json_escape(&m.name),
                m.kind.as_str()
            ));
            for (i, (k, v)) in s.labels.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\"{}\":\"{}\"", json_escape(k), json_escape(v)));
            }
            out.push_str(&format!("}},\"value\":{}}}\n", fmt_value(s.value)));
        }
    }
    out
}

/// A four-family view of a [`LogHistogram`](crate::latency::LogHistogram)
/// for exporters: `<name>_count` / `<name>_sum` counters plus `<name>_p50`
/// / `<name>_p99` gauges (bucket-upper-bound estimates, within one log2
/// bucket of truth).  Call [`observe`](HistogramFamily::observe) once per
/// label set — e.g. once per tenant for the serving layer's network-queue
/// wait stage — then flatten with [`into_metrics`](HistogramFamily::into_metrics).
#[derive(Debug, Clone)]
pub struct HistogramFamily {
    count: Metric,
    sum: Metric,
    p50: Metric,
    p99: Metric,
}

impl HistogramFamily {
    pub fn new(name: &str, help: &str) -> Self {
        HistogramFamily {
            count: Metric::new(
                &format!("{name}_count"),
                &format!("{help} (sample count)"),
                MetricKind::Counter,
            ),
            sum: Metric::new(
                &format!("{name}_sum"),
                &format!("{help} (sum of samples)"),
                MetricKind::Counter,
            ),
            p50: Metric::new(
                &format!("{name}_p50"),
                &format!("{help} (median, log2-bucket upper bound)"),
                MetricKind::Gauge,
            ),
            p99: Metric::new(
                &format!("{name}_p99"),
                &format!("{help} (p99, log2-bucket upper bound)"),
                MetricKind::Gauge,
            ),
        }
    }

    /// Add one labelled histogram's samples to all four families.
    pub fn observe(&mut self, labels: &[(&str, &str)], h: &crate::latency::LogHistogram) {
        self.count
            .samples
            .push(MetricSample::new(labels, h.count as f64));
        self.sum
            .samples
            .push(MetricSample::new(labels, h.sum as f64));
        self.p50
            .samples
            .push(MetricSample::new(labels, h.p50() as f64));
        self.p99
            .samples
            .push(MetricSample::new(labels, h.p99() as f64));
    }

    /// The four metric families, ready for [`render_prometheus`] /
    /// [`render_jsonl`].
    pub fn into_metrics(self) -> Vec<Metric> {
        vec![self.count, self.sum, self.p50, self.p99]
    }
}

/// Render ring events as JSON-lines, oldest first.
pub fn render_events_jsonl(events: &[Stamped]) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str(&e.to_jsonl());
        out.push('\n');
    }
    out
}

/// Minimal JSON string escaping for the hand-rolled renderers.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prometheus_render_matches_the_golden_exposition() {
        let metrics = vec![
            Metric::new(
                "eris_commands_routed_total",
                "Routing decisions made (one per submitted command).",
                MetricKind::Counter,
            )
            .sample(&[], 1234.0),
            Metric::new(
                "eris_aeu_commands_executed_total",
                "Commands executed, per AEU.",
                MetricKind::Counter,
            )
            .sample(&[("aeu", "0"), ("node", "0")], 617.0)
            .sample(&[("aeu", "1"), ("node", "0")], 617.0),
            Metric::new(
                "eris_incoming_peak_pending_bytes",
                "High-water mark of pending incoming-buffer bytes.",
                MetricKind::Gauge,
            )
            .sample(&[("aeu", "0")], 3712.5),
            Metric::new(
                "eris_object_name_info",
                "Object id to name mapping; value is always 1.\nSecond help line.",
                MetricKind::Gauge,
            )
            .sample(
                &[("object", "0"), ("name", "weird\"name\\with\nnewline")],
                1.0,
            ),
        ];
        let got = render_prometheus(&metrics);
        let want = include_str!("../tests/golden/exposition.prom");
        assert_eq!(got, want, "golden Prometheus exposition drifted");
    }

    #[test]
    fn jsonl_samples_parse_back() {
        let metrics = vec![Metric::new("eris_x_total", "x", MetricKind::Counter)
            .sample(&[("aeu", "3")], 17.0)
            .sample(&[], 0.25)];
        let text = render_jsonl(&metrics, 99);
        for line in text.lines() {
            let v = crate::json::parse(line).expect("line parses");
            assert_eq!(v.get("at_ns").and_then(|x| x.as_u64()), Some(99));
            assert_eq!(
                v.get("metric").and_then(|x| x.as_str()),
                Some("eris_x_total")
            );
            assert!(v.get("value").and_then(|x| x.as_f64()).is_some());
        }
        assert_eq!(text.lines().count(), 2);
    }

    #[test]
    fn histogram_family_exports_all_four_views() {
        use crate::latency::LogHistogram;
        let mut fast = LogHistogram::default();
        let mut slow = LogHistogram::default();
        for v in [1u64, 2, 3, 4] {
            fast.record(v);
        }
        for v in [1_000u64, 2_000, 4_000] {
            slow.record(v);
        }
        let mut fam = HistogramFamily::new("eris_server_net_wait_ns", "Network-queue wait");
        fam.observe(&[("tenant", "0")], &fast);
        fam.observe(&[("tenant", "1")], &slow);
        let metrics = fam.into_metrics();
        assert_eq!(metrics.len(), 4);
        assert_eq!(metrics[0].name, "eris_server_net_wait_ns_count");
        assert_eq!(metrics[0].samples[0].value, 4.0);
        assert_eq!(metrics[1].samples[1].value, 7_000.0);
        assert_eq!(metrics[3].samples[1].value, slow.p99() as f64);
        // Both label sets render under the same family names.
        let text = render_prometheus(&metrics);
        assert!(text.contains("eris_server_net_wait_ns_p99{tenant=\"0\"}"));
        assert!(text.contains("eris_server_net_wait_ns_p99{tenant=\"1\"}"));
        // And every sample survives the JSONL renderer.
        assert_eq!(render_jsonl(&metrics, 1).lines().count(), 8);
    }

    #[test]
    fn label_escaping_survives_a_jsonl_roundtrip() {
        let metrics = vec![Metric::new("eris_names", "names", MetricKind::Gauge)
            .sample(&[("name", "a\"b\\c\nd\te")], 1.0)];
        let text = render_jsonl(&metrics, 0);
        let v = crate::json::parse(text.trim_end()).unwrap();
        let labels = v.get("labels").unwrap();
        assert_eq!(
            labels.get("name").and_then(|x| x.as_str()),
            Some("a\"b\\c\nd\te")
        );
    }
}
