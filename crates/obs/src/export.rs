//! Exporters: a neutral metric IR rendered to Prometheus text format or
//! JSON-lines.
//!
//! `eris-core` converts its `TelemetrySnapshot` into `Vec<Metric>`;
//! rendering lives here so the format logic (naming, HELP/TYPE lines,
//! label escaping) has one owner and one golden test, independent of
//! the engine.

use crate::event::Stamped;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    Counter,
    Gauge,
}

impl MetricKind {
    fn as_str(&self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
        }
    }
}

/// One labelled sample of a metric family.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSample {
    pub labels: Vec<(String, String)>,
    pub value: f64,
}

impl MetricSample {
    pub fn new(labels: &[(&str, &str)], value: f64) -> Self {
        MetricSample {
            labels: labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            value,
        }
    }
}

/// One metric family: a name, help text, a kind, and its samples.
#[derive(Debug, Clone, PartialEq)]
pub struct Metric {
    pub name: String,
    pub help: String,
    pub kind: MetricKind,
    pub samples: Vec<MetricSample>,
}

impl Metric {
    pub fn new(name: &str, help: &str, kind: MetricKind) -> Self {
        Metric {
            name: name.to_string(),
            help: help.to_string(),
            kind,
            samples: Vec::new(),
        }
    }

    pub fn sample(mut self, labels: &[(&str, &str)], value: f64) -> Self {
        self.samples.push(MetricSample::new(labels, value));
        self
    }
}

/// Escape a HELP line: Prometheus requires `\\` and `\n` escapes.
fn escape_help(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Escape a label value: `\\`, `\"`, and `\n`.
fn escape_label(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Render a value the way Prometheus expects: integers without a
/// fractional tail, everything else in shortest-roundtrip float form.
fn fmt_value(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 9.0e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Render metric families in the Prometheus text exposition format.
pub fn render_prometheus(metrics: &[Metric]) -> String {
    let mut out = String::new();
    for m in metrics {
        out.push_str("# HELP ");
        out.push_str(&m.name);
        out.push(' ');
        out.push_str(&escape_help(&m.help));
        out.push('\n');
        out.push_str("# TYPE ");
        out.push_str(&m.name);
        out.push(' ');
        out.push_str(m.kind.as_str());
        out.push('\n');
        for s in &m.samples {
            out.push_str(&m.name);
            if !s.labels.is_empty() {
                out.push('{');
                for (i, (k, v)) in s.labels.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(k);
                    out.push_str("=\"");
                    out.push_str(&escape_label(v));
                    out.push('"');
                }
                out.push('}');
            }
            out.push(' ');
            out.push_str(&fmt_value(s.value));
            out.push('\n');
        }
    }
    out
}

/// Render metric samples as JSON-lines: one object per sample, stamped
/// with `at_ns` so successive exports form a time series.
pub fn render_jsonl(metrics: &[Metric], at_ns: u64) -> String {
    let mut out = String::new();
    for m in metrics {
        for s in &m.samples {
            out.push_str(&format!(
                "{{\"at_ns\":{at_ns},\"metric\":\"{}\",\"kind\":\"{}\",\"labels\":{{",
                json_escape(&m.name),
                m.kind.as_str()
            ));
            for (i, (k, v)) in s.labels.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\"{}\":\"{}\"", json_escape(k), json_escape(v)));
            }
            out.push_str(&format!("}},\"value\":{}}}\n", fmt_value(s.value)));
        }
    }
    out
}

/// Render ring events as JSON-lines, oldest first.
pub fn render_events_jsonl(events: &[Stamped]) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str(&e.to_jsonl());
        out.push('\n');
    }
    out
}

/// Minimal JSON string escaping for the hand-rolled renderers.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prometheus_render_matches_the_golden_exposition() {
        let metrics = vec![
            Metric::new(
                "eris_commands_routed_total",
                "Routing decisions made (one per submitted command).",
                MetricKind::Counter,
            )
            .sample(&[], 1234.0),
            Metric::new(
                "eris_aeu_commands_executed_total",
                "Commands executed, per AEU.",
                MetricKind::Counter,
            )
            .sample(&[("aeu", "0"), ("node", "0")], 617.0)
            .sample(&[("aeu", "1"), ("node", "0")], 617.0),
            Metric::new(
                "eris_incoming_peak_pending_bytes",
                "High-water mark of pending incoming-buffer bytes.",
                MetricKind::Gauge,
            )
            .sample(&[("aeu", "0")], 3712.5),
            Metric::new(
                "eris_object_name_info",
                "Object id to name mapping; value is always 1.\nSecond help line.",
                MetricKind::Gauge,
            )
            .sample(
                &[("object", "0"), ("name", "weird\"name\\with\nnewline")],
                1.0,
            ),
        ];
        let got = render_prometheus(&metrics);
        let want = include_str!("../tests/golden/exposition.prom");
        assert_eq!(got, want, "golden Prometheus exposition drifted");
    }

    #[test]
    fn jsonl_samples_parse_back() {
        let metrics = vec![Metric::new("eris_x_total", "x", MetricKind::Counter)
            .sample(&[("aeu", "3")], 17.0)
            .sample(&[], 0.25)];
        let text = render_jsonl(&metrics, 99);
        for line in text.lines() {
            let v = crate::json::parse(line).expect("line parses");
            assert_eq!(v.get("at_ns").and_then(|x| x.as_u64()), Some(99));
            assert_eq!(
                v.get("metric").and_then(|x| x.as_str()),
                Some("eris_x_total")
            );
            assert!(v.get("value").and_then(|x| x.as_f64()).is_some());
        }
        assert_eq!(text.lines().count(), 2);
    }

    #[test]
    fn label_escaping_survives_a_jsonl_roundtrip() {
        let metrics = vec![Metric::new("eris_names", "names", MetricKind::Gauge)
            .sample(&[("name", "a\"b\\c\nd\te")], 1.0)];
        let text = render_jsonl(&metrics, 0);
        let v = crate::json::parse(text.trim_end()).unwrap();
        let labels = v.get("labels").unwrap();
        assert_eq!(
            labels.get("name").and_then(|x| x.as_str()),
            Some("a\"b\\c\nd\te")
        );
    }
}
