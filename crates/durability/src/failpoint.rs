//! Fault injection for the durability paths.
//!
//! A [`FailPoints`] instance is shared (via `Arc`) between a test and the
//! journal/checkpoint/recovery code.  The test *arms* a named point; when
//! the durability layer reaches it, the instance trips into the *crashed*
//! state and every subsequent durability operation becomes a no-op — the
//! in-process analogue of the process dying at that instruction.  The
//! test then discards the engine and recovers from whatever reached disk,
//! exactly as a restarted process would.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};

/// Crash while a group commit has written only a prefix of its buffer —
/// the torn-write case the record CRC exists for.
pub const FP_JOURNAL_TORN_WRITE: &str = "journal-torn-write";
/// Crash after the group commit's `write` but before its `fsync`.
pub const FP_JOURNAL_PRE_SYNC: &str = "journal-pre-sync";
/// Crash with only some checkpoint part files written.
pub const FP_CHECKPOINT_PARTIAL: &str = "checkpoint-partial";
/// Crash with every part file written but no manifest committed.
pub const FP_CHECKPOINT_PRE_MANIFEST: &str = "checkpoint-pre-manifest";
/// Crash halfway through journal-tail replay during recovery.
pub const FP_RECOVERY_MID_REPLAY: &str = "recovery-mid-replay";

/// Every fail point compiled into the durability paths.
pub const ALL_FAIL_POINTS: [&str; 5] = [
    FP_JOURNAL_TORN_WRITE,
    FP_JOURNAL_PRE_SYNC,
    FP_CHECKPOINT_PARTIAL,
    FP_CHECKPOINT_PRE_MANIFEST,
    FP_RECOVERY_MID_REPLAY,
];

/// A set of armed fail points plus the crashed flag they trip.
#[derive(Debug, Default)]
pub struct FailPoints {
    /// Remaining passes before each armed point fires.
    armed: Mutex<HashMap<&'static str, u64>>,
    crashed: AtomicBool,
}

impl FailPoints {
    /// No points armed; nothing ever fires.
    pub fn new() -> Self {
        Self::default()
    }

    /// Arm `name` to fire on the `(survive + 1)`-th visit.
    pub fn arm(&self, name: &'static str, survive: u64) {
        self.armed.lock().insert(name, survive);
    }

    /// Called by durability code at the injection site.  Returns `true`
    /// when the point fires, which also trips [`FailPoints::crashed`].
    // HOT-PATH-CUT: chaos-injection check — test-only fail points,
    // disabled (empty table) in production configs.
    pub fn hit(&self, name: &'static str) -> bool {
        let mut armed = self.armed.lock();
        match armed.get_mut(name) {
            Some(0) => {
                armed.remove(name);
                self.crashed.store(true, Ordering::Release);
                true
            }
            Some(n) => {
                *n -= 1;
                false
            }
            None => false,
        }
    }

    /// True once any point has fired; durability ops check this and
    /// become no-ops, modelling the dead process.
    pub fn crashed(&self) -> bool {
        self.crashed.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_after_surviving_the_armed_count() {
        let fp = FailPoints::new();
        fp.arm(FP_JOURNAL_PRE_SYNC, 2);
        assert!(!fp.hit(FP_JOURNAL_PRE_SYNC));
        assert!(!fp.hit(FP_JOURNAL_PRE_SYNC));
        assert!(!fp.crashed());
        assert!(fp.hit(FP_JOURNAL_PRE_SYNC));
        assert!(fp.crashed());
        // Disarmed after firing; unrelated points never fire.
        assert!(!fp.hit(FP_JOURNAL_PRE_SYNC));
        assert!(!fp.hit(FP_CHECKPOINT_PARTIAL));
    }
}
