//! # eris-durability — journals, checkpoints, and crash recovery
//!
//! The ERIS paper scopes persistence out ("ERIS is an in-memory storage
//! engine"); this crate adds it without touching the engine's hot-path
//! architecture, by extending the data-oriented design to the redo
//! stream itself:
//!
//! * **Per-AEU write-ahead journal** ([`wal`]) — one append-only log per
//!   AEU, written only by its owner, group-committed at AEU step
//!   boundaries.  Logs record *applied local effects* (post-routing), so
//!   replay needs no re-routing and the logs replay independently.
//! * **NUMA-partitioned checkpoints** ([`checkpoint`]) — one part file
//!   per AEU written in parallel, committed atomically by a manifest
//!   that also records each log's LSN cut and the per-object
//!   conservation ledger.
//! * **Recovery** ([`recovery`]) — newest complete checkpoint, then
//!   deterministic per-AEU journal-tail replay, then routing-table
//!   rebuild.
//! * **Fail points** ([`failpoint`]) — crash injection compiled into the
//!   durability paths (torn write, pre-sync, partial checkpoint,
//!   pre-manifest, mid-replay) driving the crash-matrix tests.
//!
//! ## Quick start
//!
//! ```
//! use eris_core::prelude::*;
//! use eris_durability::Durability;
//!
//! let dir = std::env::temp_dir().join(format!("eris-doc-{}", std::process::id()));
//! let cfg = EngineConfig { collect_results: true, ..Default::default() };
//! let mut engine = Engine::new(eris_numa::intel_machine(), cfg.clone());
//! let mut dura = Durability::open(&dir, engine.num_aeus()).unwrap();
//! dura.attach(&mut engine);
//!
//! let idx = engine.create_index("orders", 1 << 20);
//! engine.submit(AeuId(0), DataCommand {
//!     object: idx,
//!     ticket: 1,
//!     payload: Payload::Upsert { pairs: vec![(21, 42)] },
//! }).unwrap();
//! engine.run_until_drained();
//! dura.checkpoint(&mut engine).unwrap();
//!
//! // ... crash ... then rebuild from disk into a fresh engine:
//! let mut recovered = Engine::new(eris_numa::intel_machine(), cfg);
//! let report = Durability::recover(&mut recovered, &dir).unwrap();
//! assert_eq!(report.checkpoint, Some(0));
//! # std::fs::remove_dir_all(&dir).unwrap();
//! ```

pub mod checkpoint;
pub mod crc;
pub mod failpoint;
pub mod recovery;
pub mod wal;

pub use checkpoint::{Manifest, ManifestObject};
pub use failpoint::{
    FailPoints, ALL_FAIL_POINTS, FP_CHECKPOINT_PARTIAL, FP_CHECKPOINT_PRE_MANIFEST,
    FP_JOURNAL_PRE_SYNC, FP_JOURNAL_TORN_WRITE, FP_RECOVERY_MID_REPLAY,
};
pub use recovery::{RecoveryError, RecoveryReport};

use eris_core::Engine;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use wal::{JournalSink, Wal};

/// The durable home of one engine: `<dir>/wal/aeu-<i>.log` journals plus
/// `<dir>/ckpt-<seq>/` checkpoints.
pub struct Durability {
    dir: PathBuf,
    sink: Arc<JournalSink>,
    fail: Arc<FailPoints>,
    next_seq: u64,
}

impl Durability {
    /// Open (creating if needed) the durable directory for an engine
    /// with `num_aeus` AEUs, with no fail points armed.
    pub fn open(dir: &Path, num_aeus: usize) -> std::io::Result<Self> {
        Self::open_with(dir, num_aeus, Arc::new(FailPoints::new()))
    }

    /// [`Durability::open`] with a caller-owned fail-point set (crash
    /// tests keep a handle to arm points mid-run).
    pub fn open_with(dir: &Path, num_aeus: usize, fail: Arc<FailPoints>) -> std::io::Result<Self> {
        let wal_dir = dir.join("wal");
        std::fs::create_dir_all(&wal_dir)?;
        let wals = (0..num_aeus)
            .map(|i| Wal::open(&wal_dir.join(format!("aeu-{i}.log"))))
            .collect::<std::io::Result<Vec<_>>>()?;
        let next_seq = checkpoint::find_latest(dir)?
            .map(|(_, m)| m.seq + 1)
            .unwrap_or(0);
        Ok(Durability {
            dir: dir.to_path_buf(),
            sink: Arc::new(JournalSink::new(wals, fail.clone())),
            fail,
            next_seq,
        })
    }

    /// The fail-point set shared with the durability paths.
    pub fn fail_points(&self) -> Arc<FailPoints> {
        self.fail.clone()
    }

    /// Wire the engine to the journal: captures the telemetry shards and
    /// attaches the sink so every AEU's applied mutations are logged.
    /// Attach while quiesced — typically right after construction or
    /// recovery, before any traffic.
    pub fn attach(&self, engine: &mut Engine) {
        let shards = engine
            .aeu_ids()
            .iter()
            .map(|&a| engine.telemetry_shard(a).clone())
            .collect();
        self.sink.set_shards(shards);
        engine.set_redo_sink(Some(self.sink.clone()));
    }

    /// Take a checkpoint: drain the engine, sync every journal, then
    /// write the partitioned snapshot.  Returns the checkpoint sequence
    /// number.  On an injected crash the on-disk state is left partial
    /// (that is the point) and the sequence is not consumed.
    pub fn checkpoint(&mut self, engine: &mut Engine) -> std::io::Result<u64> {
        engine.run_until_drained();
        let cuts = self.sink.sync_all();
        let seq = self.next_seq;
        checkpoint::write_checkpoint(engine, &self.dir, seq, &cuts, &self.fail)?;
        if !self.fail.crashed() {
            self.next_seq += 1;
        }
        Ok(seq)
    }

    /// Rebuild a fresh engine from `dir` with no fail points armed.
    /// See [`recovery::recover_into`] for the full contract.
    pub fn recover(engine: &mut Engine, dir: &Path) -> Result<RecoveryReport, RecoveryError> {
        recovery::recover_into(engine, dir, &FailPoints::new())
    }
}
