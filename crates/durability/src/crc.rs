//! CRC-32 (IEEE 802.3 polynomial, reflected) — the checksum guarding
//! every journal record, checkpoint part file, and manifest.
//!
//! Hand-rolled byte-at-a-time table implementation: the build environment
//! is offline, and the durability layer only checksums at group-commit
//! and checkpoint granularity, so this is nowhere near the hot path.

/// Reflected polynomial of CRC-32/ISO-HDLC (zlib, gzip, Ethernet).
const POLY: u32 = 0xEDB8_8320;

const fn make_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = make_table();

/// CRC-32 of `data` (init `!0`, final xor `!0` — the standard variant).
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in data {
        c = TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_known_vectors() {
        // Check values from the CRC catalogue (CRC-32/ISO-HDLC).
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn detects_single_bit_flips() {
        let base = b"ERIS durability journal record".to_vec();
        let reference = crc32(&base);
        for i in 0..base.len() * 8 {
            let mut corrupt = base.clone();
            corrupt[i / 8] ^= 1 << (i % 8);
            assert_ne!(crc32(&corrupt), reference, "flip at bit {i} undetected");
        }
    }
}
