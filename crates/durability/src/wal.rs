//! The per-AEU write-ahead journal.
//!
//! ERIS routes every mutation to the one AEU that owns the target
//! partition, so the journal is partitioned the same way the data is:
//! one append-only log per AEU, written by that AEU alone (no log latch,
//! no cross-socket cache-line bouncing — the redo analogue of the
//! paper's "exclusive ownership" rule).  Each AEU logs the *local
//! effects* it applied (post-routing), so replay is deterministic per
//! log and never re-routes.
//!
//! ## File format
//!
//! ```text
//! [8B magic "ERISWAL1"]
//! repeat:  [u32 len][u32 crc32(payload)][payload: len bytes]
//! ```
//!
//! A record's payload is `[u8 tag][body]` (tags below).  All integers are
//! little-endian.  The *LSN* of a log is simply its synced byte length;
//! checkpoint manifests record one LSN cut per AEU and recovery replays
//! records whose offset is ≥ the cut.  The reader stops at the first
//! short, oversized, or CRC-failing record — a torn group commit
//! truncates cleanly instead of corrupting replay.

use crate::crc::crc32;
use crate::failpoint::{FailPoints, FP_JOURNAL_PRE_SYNC, FP_JOURNAL_TORN_WRITE};
use eris_core::durability::{ObjectClass, RedoOp};
use eris_core::telemetry::TelemetryShard;
use eris_core::{AeuId, DataObjectId};
use eris_obs::{now_ns, Stamped, TraceEvent};
use parking_lot::Mutex;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::Ordering::Relaxed;
use std::sync::Arc;

pub const WAL_MAGIC: &[u8; 8] = b"ERISWAL1";

/// Bytes buffered before a group commit flushes mid-step.  One AEU step
/// normally commits once at `end_of_step`; this bounds memory when a
/// single step journals a huge bulk absorb.
pub const GROUP_COMMIT_BYTES: usize = 256 * 1024;

/// Upper bound on one record's payload; the reader treats larger length
/// prefixes as corruption (stops replay there).
pub const MAX_RECORD_BYTES: u32 = 64 << 20;

const TAG_CREATE: u8 = 1;
const TAG_UPSERT_PAIRS: u8 = 2;
const TAG_APPEND_ROWS: u8 = 3;
const TAG_REMOVE_RANGE: u8 = 4;
const TAG_REMOVE_TAIL: u8 = 5;
const TAG_SET_RANGE: u8 = 6;

/// Owned, decoded form of a journal record (the replay-side mirror of
/// [`RedoOp`], which borrows from the AEU's scratch buffers).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalOp {
    Create {
        class: ObjectClass,
        object: DataObjectId,
        domain: u64,
        name: String,
    },
    UpsertPairs {
        object: DataObjectId,
        pairs: Vec<(u64, u64)>,
    },
    AppendRows {
        object: DataObjectId,
        rows: Vec<u64>,
    },
    RemoveRange {
        object: DataObjectId,
        lo: u64,
        hi: u64,
    },
    RemoveTail {
        object: DataObjectId,
        n: u64,
    },
    SetRange {
        object: DataObjectId,
        lo: u64,
        hi: u64,
    },
}

/// Serialize one redo operation into a record payload.
pub fn encode_op(op: &RedoOp<'_>, out: &mut Vec<u8>) {
    match op {
        RedoOp::CreateObject {
            class,
            object,
            domain,
            name,
        } => {
            out.push(TAG_CREATE);
            out.push(class.tag());
            out.extend_from_slice(&object.0.to_le_bytes());
            out.extend_from_slice(&domain.to_le_bytes());
            out.extend_from_slice(&(name.len() as u32).to_le_bytes());
            out.extend_from_slice(name.as_bytes());
        }
        RedoOp::UpsertPairs { object, pairs } => {
            out.push(TAG_UPSERT_PAIRS);
            out.extend_from_slice(&object.0.to_le_bytes());
            out.extend_from_slice(&(pairs.len() as u64).to_le_bytes());
            for (k, v) in pairs.iter() {
                out.extend_from_slice(&k.to_le_bytes());
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
        RedoOp::AppendRows { object, rows } => {
            out.push(TAG_APPEND_ROWS);
            out.extend_from_slice(&object.0.to_le_bytes());
            out.extend_from_slice(&(rows.len() as u64).to_le_bytes());
            for r in rows.iter() {
                out.extend_from_slice(&r.to_le_bytes());
            }
        }
        RedoOp::RemoveRange { object, lo, hi } => {
            out.push(TAG_REMOVE_RANGE);
            out.extend_from_slice(&object.0.to_le_bytes());
            out.extend_from_slice(&lo.to_le_bytes());
            out.extend_from_slice(&hi.to_le_bytes());
        }
        RedoOp::RemoveTail { object, n } => {
            out.push(TAG_REMOVE_TAIL);
            out.extend_from_slice(&object.0.to_le_bytes());
            out.extend_from_slice(&n.to_le_bytes());
        }
        RedoOp::SetRange { object, lo, hi } => {
            out.push(TAG_SET_RANGE);
            out.extend_from_slice(&object.0.to_le_bytes());
            out.extend_from_slice(&lo.to_le_bytes());
            out.extend_from_slice(&hi.to_le_bytes());
        }
    }
}

fn take_u8(buf: &mut &[u8]) -> Option<u8> {
    let (&b, rest) = buf.split_first()?;
    *buf = rest;
    Some(b)
}

fn take_u32(buf: &mut &[u8]) -> Option<u32> {
    if buf.len() < 4 {
        return None;
    }
    let v = u32::from_le_bytes(buf[..4].try_into().unwrap());
    *buf = &buf[4..];
    Some(v)
}

fn take_u64(buf: &mut &[u8]) -> Option<u64> {
    if buf.len() < 8 {
        return None;
    }
    let v = u64::from_le_bytes(buf[..8].try_into().unwrap());
    *buf = &buf[8..];
    Some(v)
}

/// Decode one record payload.  `None` rejects malformed input — the
/// payload passed its CRC, so this only fires on version skew or bugs,
/// and recovery surfaces it as corruption rather than panicking.
pub fn decode_op(mut buf: &[u8]) -> Option<JournalOp> {
    let tag = take_u8(&mut buf)?;
    let op = match tag {
        TAG_CREATE => {
            let class = ObjectClass::from_tag(take_u8(&mut buf)?)?;
            let object = DataObjectId(take_u32(&mut buf)?);
            let domain = take_u64(&mut buf)?;
            let len = take_u32(&mut buf)? as usize;
            if buf.len() != len {
                return None;
            }
            let name = String::from_utf8(buf.to_vec()).ok()?;
            buf = &[];
            JournalOp::Create {
                class,
                object,
                domain,
                name,
            }
        }
        TAG_UPSERT_PAIRS => {
            let object = DataObjectId(take_u32(&mut buf)?);
            let n = take_u64(&mut buf)? as usize;
            if buf.len() != n.checked_mul(16)? {
                return None;
            }
            let mut pairs = Vec::with_capacity(n);
            for _ in 0..n {
                let k = take_u64(&mut buf)?;
                let v = take_u64(&mut buf)?;
                pairs.push((k, v));
            }
            JournalOp::UpsertPairs { object, pairs }
        }
        TAG_APPEND_ROWS => {
            let object = DataObjectId(take_u32(&mut buf)?);
            let n = take_u64(&mut buf)? as usize;
            if buf.len() != n.checked_mul(8)? {
                return None;
            }
            let mut rows = Vec::with_capacity(n);
            for _ in 0..n {
                rows.push(take_u64(&mut buf)?);
            }
            JournalOp::AppendRows { object, rows }
        }
        TAG_REMOVE_RANGE => JournalOp::RemoveRange {
            object: DataObjectId(take_u32(&mut buf)?),
            lo: take_u64(&mut buf)?,
            hi: take_u64(&mut buf)?,
        },
        TAG_REMOVE_TAIL => JournalOp::RemoveTail {
            object: DataObjectId(take_u32(&mut buf)?),
            n: take_u64(&mut buf)?,
        },
        TAG_SET_RANGE => JournalOp::SetRange {
            object: DataObjectId(take_u32(&mut buf)?),
            lo: take_u64(&mut buf)?,
            hi: take_u64(&mut buf)?,
        },
        _ => return None,
    };
    if buf.is_empty() {
        Some(op)
    } else {
        None
    }
}

struct WalInner {
    file: File,
    /// Records framed but not yet written + synced (the group commit).
    buf: Vec<u8>,
    /// Byte offset up to which the file content is known durable.
    synced_lsn: u64,
}

/// One AEU's append-only journal.  The mutex is uncontended in steady
/// state — only the owning AEU appends — but makes the sink `Sync` for
/// the real-thread runtime and for barriers issued by the engine thread.
pub struct Wal {
    path: PathBuf,
    inner: Mutex<WalInner>,
}

impl Wal {
    /// Open (or create) the journal at `path`.  An existing file is
    /// scanned and truncated back to its last intact record so a torn
    /// tail from a previous crash is never appended after.
    pub fn open(path: &Path) -> std::io::Result<Self> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        let valid = if bytes.is_empty() {
            file.write_all(WAL_MAGIC)?;
            file.sync_data()?;
            WAL_MAGIC.len() as u64
        } else {
            let valid = scan_valid_len(&bytes);
            if valid < bytes.len() as u64 {
                file.set_len(valid)?;
                file.sync_data()?;
            }
            valid
        };
        file.seek(SeekFrom::Start(valid))?;
        Ok(Wal {
            path: path.to_path_buf(),
            inner: Mutex::new(WalInner {
                file,
                buf: Vec::new(),
                synced_lsn: valid,
            }),
        })
    }

    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Frame `payload` into the group-commit buffer.  Returns the bytes
    /// now pending so the caller can trigger an early flush.
    pub fn append_payload(&self, payload: &[u8]) -> usize {
        let mut inner = self.inner.lock();
        inner
            .buf
            .extend_from_slice(&(payload.len() as u32).to_le_bytes());
        inner.buf.extend_from_slice(&crc32(payload).to_le_bytes());
        inner.buf.extend_from_slice(payload);
        inner.buf.len()
    }

    /// Group commit: write the pending buffer and `fsync`.  Fail points
    /// model a crash with a torn write or before the sync.  Returns the
    /// number of records' bytes made durable (0 when nothing pended or
    /// the crash fired).
    // HOT-PATH-CUT: group-commit flush — file IO on the durability
    // thread, never under the AEU's latch-free section.
    pub fn flush(&self, fail: &FailPoints, shard: Option<&Arc<TelemetryShard>>) -> u64 {
        if fail.crashed() {
            return 0;
        }
        let mut inner = self.inner.lock();
        if inner.buf.is_empty() {
            return 0;
        }
        if fail.hit(FP_JOURNAL_TORN_WRITE) {
            // Die mid-`write(2)`: a prefix that ends inside the last
            // record's framing reaches the file, and no sync happens.
            let torn = inner.buf.len().saturating_sub(3);
            let prefix = inner.buf[..torn].to_vec();
            let _ = inner.file.write_all(&prefix);
            return 0;
        }
        let buf = std::mem::take(&mut inner.buf);
        if inner.file.write_all(&buf).is_err() {
            inner.buf = buf;
            return 0;
        }
        if fail.hit(FP_JOURNAL_PRE_SYNC) {
            // Written but never synced: the bytes may or may not survive
            // a real crash; this harness keeps them (the reader must
            // tolerate either outcome — both are valid torn states).
            return 0;
        }
        if inner.file.sync_data().is_err() {
            return 0;
        }
        let n = buf.len() as u64;
        inner.synced_lsn += n;
        if let Some(shard) = shard {
            shard.counters.journal_bytes.fetch_add(n, Relaxed);
            shard.counters.journal_fsyncs.fetch_add(1, Relaxed);
        }
        n
    }

    /// The durable byte offset (the LSN recorded by checkpoint cuts).
    pub fn synced_lsn(&self) -> u64 {
        self.inner.lock().synced_lsn
    }
}

/// Length of the longest valid prefix of a journal image: magic plus
/// intact CRC-checked records.
fn scan_valid_len(bytes: &[u8]) -> u64 {
    if bytes.len() < WAL_MAGIC.len() || &bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
        return 0;
    }
    let mut off = WAL_MAGIC.len();
    loop {
        let Some(header) = bytes.get(off..off + 8) else {
            return off as u64;
        };
        let len = u32::from_le_bytes(header[..4].try_into().unwrap());
        let crc = u32::from_le_bytes(header[4..8].try_into().unwrap());
        if len > MAX_RECORD_BYTES {
            return off as u64;
        }
        let Some(payload) = bytes.get(off + 8..off + 8 + len as usize) else {
            return off as u64;
        };
        if crc32(payload) != crc {
            return off as u64;
        }
        off += 8 + len as usize;
    }
}

/// Read every intact record at byte offset ≥ `cut`, in order.  Returns
/// the decoded ops and the number of torn tail bytes discarded.
pub fn read_tail(path: &Path, cut: u64) -> std::io::Result<(Vec<JournalOp>, u64)> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok((Vec::new(), 0)),
        Err(e) => return Err(e),
    };
    let valid = scan_valid_len(&bytes) as usize;
    let torn = (bytes.len() - valid) as u64;
    let mut ops = Vec::new();
    let mut off = WAL_MAGIC.len().min(valid);
    while off + 8 <= valid {
        let len = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap()) as usize;
        let payload = &bytes[off + 8..off + 8 + len];
        if off as u64 >= cut {
            let Some(op) = decode_op(payload) else {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("undecodable journal record at {}:{off}", path.display()),
                ));
            };
            ops.push(op);
        }
        off += 8 + len;
    }
    Ok((ops, torn))
}

/// The engine-facing sink: fan-in point for all AEUs' redo streams.
pub struct JournalSink {
    wals: Vec<Wal>,
    /// Telemetry shards, captured at attach time (empty before).
    shards: parking_lot::RwLock<Vec<Arc<TelemetryShard>>>,
    fail: Arc<FailPoints>,
}

impl JournalSink {
    pub fn new(wals: Vec<Wal>, fail: Arc<FailPoints>) -> Self {
        JournalSink {
            wals,
            shards: parking_lot::RwLock::new(Vec::new()),
            fail,
        }
    }

    pub fn num_wals(&self) -> usize {
        self.wals.len()
    }

    pub fn set_shards(&self, shards: Vec<Arc<TelemetryShard>>) {
        *self.shards.write() = shards;
    }

    pub fn fail_points(&self) -> &Arc<FailPoints> {
        &self.fail
    }

    /// Flush + sync every AEU's log; returns the per-AEU LSN cuts.
    pub fn sync_all(&self) -> Vec<u64> {
        for i in 0..self.wals.len() {
            self.flush_wal(i);
        }
        self.wals.iter().map(|w| w.synced_lsn()).collect()
    }

    /// Group-commit one AEU's log and trace the commit when it made
    /// bytes durable.
    // HOT-PATH-CUT: group-commit flush entry, as Wal::flush.
    fn flush_wal(&self, idx: usize) -> u64 {
        let shards = self.shards.read();
        let shard = shards.get(idx);
        let n = self.wals[idx].flush(&self.fail, shard);
        if n > 0 {
            if let Some(shard) = shard {
                shard.ring.emit(Stamped {
                    at_ns: now_ns(),
                    aeu: idx as u32,
                    event: TraceEvent::GroupCommit {
                        aeu: idx as u32,
                        bytes: n,
                    },
                });
            }
        }
        n
    }
}

impl eris_core::durability::RedoSink for JournalSink {
    // HOT-PATH-CUT: journal append — buffers the redo record on the
    // durability path; reviewed with the WAL, not the AEU loop.
    fn append(&self, aeu: AeuId, op: RedoOp<'_>) {
        if self.fail.crashed() {
            return;
        }
        let mut payload = Vec::new();
        encode_op(&op, &mut payload);
        let wal = &self.wals[aeu.index()];
        let pending = wal.append_payload(&payload);
        {
            let shards = self.shards.read();
            if let Some(shard) = shards.get(aeu.index()) {
                shard.counters.journal_records.fetch_add(1, Relaxed);
            }
        }
        if pending >= GROUP_COMMIT_BYTES {
            self.flush_wal(aeu.index());
        }
    }

    fn end_of_step(&self, aeu: AeuId) {
        if self.fail.crashed() {
            return;
        }
        self.flush_wal(aeu.index());
    }

    fn barrier(&self) {
        if self.fail.crashed() {
            return;
        }
        self.sync_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let n = NEXT.fetch_add(1, Relaxed);
        std::env::temp_dir().join(format!(
            "eris-wal-test-{}-{tag}-{n}.log",
            std::process::id()
        ))
    }

    #[test]
    fn ops_roundtrip_through_the_record_codec() {
        let ops = [
            RedoOp::CreateObject {
                class: ObjectClass::Tree,
                object: DataObjectId(3),
                domain: 1 << 20,
                name: "orders",
            },
            RedoOp::UpsertPairs {
                object: DataObjectId(1),
                pairs: &[(1, 2), (u64::MAX, 0)],
            },
            RedoOp::AppendRows {
                object: DataObjectId(2),
                rows: &[5, 6, 7],
            },
            RedoOp::RemoveRange {
                object: DataObjectId(1),
                lo: 10,
                hi: 20,
            },
            RedoOp::RemoveTail {
                object: DataObjectId(2),
                n: 2,
            },
            RedoOp::SetRange {
                object: DataObjectId(1),
                lo: 0,
                hi: 512,
            },
        ];
        for op in &ops {
            let mut payload = Vec::new();
            encode_op(op, &mut payload);
            let decoded = decode_op(&payload).expect("own encoding decodes");
            // Spot-check one borrowed/owned pair; shapes are mirrored.
            if let (RedoOp::UpsertPairs { pairs, .. }, JournalOp::UpsertPairs { pairs: got, .. }) =
                (op, &decoded)
            {
                assert_eq!(&pairs[..], &got[..]);
            }
            // Every truncation of a payload is rejected.
            for cut in 0..payload.len() {
                assert!(decode_op(&payload[..cut]).is_none(), "cut at {cut}");
            }
        }
    }

    #[test]
    fn torn_tail_is_truncated_on_reopen() {
        let path = temp_path("torn");
        let fail = FailPoints::new();
        {
            let wal = Wal::open(&path).unwrap();
            wal.append_payload(&[TAG_REMOVE_TAIL, 1, 0, 0, 0, 9, 0, 0, 0, 0, 0, 0, 0]);
            assert!(wal.flush(&fail, None) > 0);
        }
        let intact = std::fs::metadata(&path).unwrap().len();
        // Simulate a torn group commit: garbage half-record at the end.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&[0xAB; 7]).unwrap();
        drop(f);

        let (ops, torn) = read_tail(&path, 0).unwrap();
        assert_eq!(ops.len(), 1);
        assert_eq!(torn, 7);
        let wal = Wal::open(&path).unwrap();
        assert_eq!(wal.synced_lsn(), intact);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), intact);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn cut_skips_checkpointed_records() {
        let path = temp_path("cut");
        let fail = FailPoints::new();
        let wal = Wal::open(&path).unwrap();
        let mut p1 = Vec::new();
        encode_op(
            &RedoOp::RemoveTail {
                object: DataObjectId(1),
                n: 1,
            },
            &mut p1,
        );
        wal.append_payload(&p1);
        wal.flush(&fail, None);
        let cut = wal.synced_lsn();
        let mut p2 = Vec::new();
        encode_op(
            &RedoOp::RemoveTail {
                object: DataObjectId(2),
                n: 2,
            },
            &mut p2,
        );
        wal.append_payload(&p2);
        wal.flush(&fail, None);

        let (all, _) = read_tail(&path, 0).unwrap();
        assert_eq!(all.len(), 2);
        let (tail, _) = read_tail(&path, cut).unwrap();
        assert_eq!(
            tail,
            vec![JournalOp::RemoveTail {
                object: DataObjectId(2),
                n: 2
            }]
        );
        std::fs::remove_file(&path).unwrap();
    }
}
