//! Crash recovery: newest complete checkpoint + per-AEU journal tails.
//!
//! Recovery is deterministic and purely local per AEU, mirroring the
//! write path: every journal holds only the effects its AEU applied to
//! partitions it owned at the time, so the logs replay independently and
//! in order with no cross-log merge.  The sequence:
//!
//! 1. Pick the newest `ckpt-<seq>` whose manifest decodes (CRC-valid);
//!    torn `.tmp` staging directories are invisible here.
//! 2. Re-create every manifest object (same ids — creation order is the
//!    id order), restore each AEU's partition images and the per-object
//!    conservation ledgers.
//! 3. Replay each AEU's journal tail from the manifest's LSN cut:
//!    first every `Create` record (object births since the checkpoint,
//!    all on AEU 0's log and barrier-synced before any data record can
//!    reference them), then the data records of each log in order.
//! 4. Rebuild the routing tables of range-partitioned objects from the
//!    recovered per-AEU partition bounds.
//!
//! Recovery itself writes nothing; crashing *during* recovery (see
//! [`FP_RECOVERY_MID_REPLAY`]) just means discarding the half-built
//! engine and running recovery again from the same on-disk state.

use crate::checkpoint::{self, Manifest};
use crate::failpoint::{FailPoints, FP_RECOVERY_MID_REPLAY};
use crate::wal::{read_tail, JournalOp, WAL_MAGIC};
use eris_core::durability::ObjectClass;
use eris_core::{AeuId, DataObjectId, Engine};
use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::Ordering::Relaxed;

/// What recovery rebuilt, for logging and assertions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Sequence number of the checkpoint restored (None = journals only).
    pub checkpoint: Option<u64>,
    /// Data objects alive after recovery.
    pub objects: usize,
    /// Journal records re-applied past the checkpoint cut.
    pub replayed_records: u64,
    /// Torn bytes discarded from journal tails.
    pub torn_bytes: u64,
}

#[derive(Debug)]
pub enum RecoveryError {
    Io(std::io::Error),
    /// On-disk state decoded but is inconsistent (e.g. an object id that
    /// does not line up with creation order).
    Corrupt(String),
    /// An armed [`FP_RECOVERY_MID_REPLAY`] fired; the half-recovered
    /// engine must be discarded and recovery re-run.
    InjectedCrash,
    /// The target engine already holds objects or has a sink attached.
    EngineNotFresh,
}

impl std::fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoveryError::Io(e) => write!(f, "recovery I/O error: {e}"),
            RecoveryError::Corrupt(m) => write!(f, "corrupt durable state: {m}"),
            RecoveryError::InjectedCrash => write!(f, "injected crash during recovery"),
            RecoveryError::EngineNotFresh => {
                write!(f, "recovery target must be a fresh engine with no objects")
            }
        }
    }
}

impl std::error::Error for RecoveryError {}

impl From<std::io::Error> for RecoveryError {
    fn from(e: std::io::Error) -> Self {
        RecoveryError::Io(e)
    }
}

fn create_object(
    engine: &mut Engine,
    class: ObjectClass,
    expect: DataObjectId,
    domain: u64,
    name: &str,
) -> Result<(), RecoveryError> {
    let got = match class {
        ObjectClass::Tree => engine.create_index(name, domain),
        ObjectClass::Hash => engine.create_hash_index(name, domain),
        ObjectClass::Column => engine.create_column(name),
    };
    if got != expect {
        return Err(RecoveryError::Corrupt(format!(
            "object \"{name}\" recovered as id {} but was journaled as {}",
            got.0, expect.0
        )));
    }
    Ok(())
}

/// Rebuild engine state from the durable directory `base` (layout:
/// `base/wal/aeu-<i>.log` + `base/ckpt-<seq>/`).  `engine` must be
/// freshly constructed — same topology and config as the crashed one —
/// with no objects and no redo sink attached.
pub fn recover_into(
    engine: &mut Engine,
    base: &Path,
    fail: &FailPoints,
) -> Result<RecoveryReport, RecoveryError> {
    if engine.has_redo_sink() || !engine.describe_objects().is_empty() {
        return Err(RecoveryError::EngineNotFresh);
    }
    let n_aeus = engine.num_aeus();

    // Phase 0: newest complete checkpoint (if any).
    let latest = checkpoint::find_latest(base)?;
    let (cuts, classes) = match &latest {
        Some((ckpt_path, manifest)) => {
            restore_checkpoint(engine, ckpt_path, manifest)?;
            let classes: HashMap<DataObjectId, ObjectClass> = manifest
                .objects
                .iter()
                .map(|o| (o.descriptor.id, o.descriptor.class))
                .collect();
            if manifest.cuts.len() != n_aeus {
                return Err(RecoveryError::Corrupt(format!(
                    "manifest cut count {} != {} AEUs",
                    manifest.cuts.len(),
                    n_aeus
                )));
            }
            (manifest.cuts.clone(), classes)
        }
        None => (vec![WAL_MAGIC.len() as u64; n_aeus], HashMap::new()),
    };
    let mut classes = classes;

    // Phase 1: read every journal tail; apply object creations first.
    let wal_dir = base.join("wal");
    let mut tails = Vec::with_capacity(n_aeus);
    let mut torn_bytes = 0;
    for (i, cut) in cuts.iter().enumerate() {
        let (ops, torn) = read_tail(&wal_dir.join(format!("aeu-{i}.log")), *cut)?;
        torn_bytes += torn;
        tails.push(ops);
    }
    for tail in &tails {
        for op in tail {
            if let JournalOp::Create {
                class,
                object,
                domain,
                name,
            } = op
            {
                create_object(engine, *class, *object, *domain, name)?;
                classes.insert(*object, *class);
            }
        }
    }

    // Phase 2: replay each AEU's data records in log order.
    let mut replayed = 0u64;
    for (i, tail) in tails.iter().enumerate() {
        let aeu = AeuId(i as u32);
        for op in tail {
            if fail.hit(FP_RECOVERY_MID_REPLAY) {
                return Err(RecoveryError::InjectedCrash);
            }
            match op {
                JournalOp::Create { .. } => {}
                JournalOp::UpsertPairs { object, pairs } => {
                    engine.aeu_mut(aeu).absorb_pairs(*object, pairs);
                }
                JournalOp::AppendRows { object, rows } => {
                    engine
                        .aeu_mut(aeu)
                        .absorb_rows(*object, rows)
                        .expect("replay targets partitions the redo log provisioned");
                }
                JournalOp::RemoveRange { object, lo, hi } => {
                    engine.aeu_mut(aeu).extract_range(*object, *lo, *hi);
                }
                JournalOp::RemoveTail { object, n } => {
                    engine.aeu_mut(aeu).extract_tail_rows(*object, *n as usize);
                }
                JournalOp::SetRange { object, lo, hi } => {
                    engine.aeu_mut(aeu).set_range(*object, (*lo, *hi));
                }
            }
            replayed += 1;
        }
        engine
            .telemetry_shard(aeu)
            .counters
            .replayed_records
            .fetch_add(tail.len() as u64, Relaxed);
    }

    // Phase 3: routing tables from recovered partition bounds.
    let objects: Vec<(DataObjectId, ObjectClass)> = classes.into_iter().collect();
    for (object, class) in objects {
        if class == ObjectClass::Column {
            continue;
        }
        let bounds: Vec<u64> = (0..n_aeus)
            .map(|i| {
                engine
                    .aeu(AeuId(i as u32))
                    .partition(object)
                    .map(|p| p.range.0)
                    .ok_or_else(|| {
                        RecoveryError::Corrupt(format!(
                            "AEU {i} has no partition for recovered object {}",
                            object.0
                        ))
                    })
            })
            .collect::<Result<_, _>>()?;
        engine.restore_partition_bounds(object, &bounds);
    }

    Ok(RecoveryReport {
        checkpoint: latest.as_ref().map(|(_, m)| m.seq),
        objects: engine.describe_objects().len(),
        replayed_records: replayed,
        torn_bytes,
    })
}

fn restore_checkpoint(
    engine: &mut Engine,
    ckpt_path: &Path,
    manifest: &Manifest,
) -> Result<(), RecoveryError> {
    for o in &manifest.objects {
        let d = &o.descriptor;
        create_object(engine, d.class, d.id, d.domain, &d.name)?;
        engine.restore_object_ledger(d.id, o.enqueued, o.executed);
    }
    for i in 0..engine.num_aeus() {
        let images = checkpoint::read_part(ckpt_path, i)?;
        let aeu = engine.aeu_mut(AeuId(i as u32));
        for img in images {
            if !aeu.restore_partition(img.object, img.range, &img.payload) {
                return Err(RecoveryError::Corrupt(format!(
                    "partition image of object {} rejected by AEU {i}",
                    img.object.0
                )));
            }
        }
    }
    Ok(())
}
