//! NUMA-partitioned checkpoints.
//!
//! A checkpoint is a directory `ckpt-<seq>/` holding one *part file per
//! AEU* — each AEU's partitions serialized independently, mirroring the
//! engine's ownership layout so restore can repopulate every partition on
//! its home NUMA node without cross-partition merging — plus a `MANIFEST`
//! that makes the checkpoint atomic: it is written last, into a `.tmp`
//! staging directory that is fsynced and renamed into place.  A crash at
//! any earlier point leaves a manifest-less `.tmp` directory that
//! recovery ignores.
//!
//! The manifest records the *journal cut*: each AEU's synced LSN at
//! checkpoint time.  Recovery loads the newest complete checkpoint and
//! replays only journal records at offsets ≥ the cut.
//!
//! ## Part file format
//!
//! ```text
//! [8B magic "ERISPART"][u32 aeu]
//! [u32 n]  n × ( [u32 object][u64 lo][u64 hi][u64 len][payload] )
//! [u32 crc32(everything before)]
//! ```
//!
//! ## Manifest format
//!
//! ```text
//! [8B magic "ERISCKPT"][u64 seq]
//! [u32 n_aeus]  n_aeus × [u64 cut]
//! [u32 n_objects]  n × ( [u32 id][u8 class][u64 domain]
//!                        [u32 name_len][name][u64 enqueued][u64 executed] )
//! [u32 crc32(everything before)]
//! ```

use crate::crc::crc32;
use crate::failpoint::{FailPoints, FP_CHECKPOINT_PARTIAL, FP_CHECKPOINT_PRE_MANIFEST};
use eris_core::durability::{ObjectClass, ObjectDescriptor};
use eris_core::{AeuId, DataObjectId, Engine};
use eris_obs::{now_ns, Stamped, TraceEvent, PHASE_BEGIN, PHASE_COMMITTED, PHASE_PARTS_WRITTEN};
use std::fs::{self, File};
use std::io::Write;
use std::path::{Path, PathBuf};

pub const PART_MAGIC: &[u8; 8] = b"ERISPART";
pub const MANIFEST_MAGIC: &[u8; 8] = b"ERISCKPT";

/// One object's manifest entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestObject {
    pub descriptor: ObjectDescriptor,
    /// Conservation-ledger state at checkpoint time (drained, so the two
    /// are equal for a healthy engine; both are kept for diagnosis).
    pub enqueued: u64,
    pub executed: u64,
}

/// The decoded `MANIFEST` of one complete checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    pub seq: u64,
    /// Per-AEU journal LSN at checkpoint time; replay starts here.
    pub cuts: Vec<u64>,
    pub objects: Vec<ManifestObject>,
}

/// One partition image from a part file.
#[derive(Debug, Clone)]
pub struct PartitionImage {
    pub object: DataObjectId,
    pub range: (u64, u64),
    pub payload: Vec<u8>,
}

fn ckpt_dir(base: &Path, seq: u64) -> PathBuf {
    base.join(format!("ckpt-{seq}"))
}

fn part_name(aeu: usize) -> String {
    format!("aeu-{aeu}.part")
}

fn encode_part(aeu: usize, parts: &[(DataObjectId, (u64, u64), Vec<u8>)]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(PART_MAGIC);
    out.extend_from_slice(&(aeu as u32).to_le_bytes());
    out.extend_from_slice(&(parts.len() as u32).to_le_bytes());
    for (object, (lo, hi), payload) in parts {
        out.extend_from_slice(&object.0.to_le_bytes());
        out.extend_from_slice(&lo.to_le_bytes());
        out.extend_from_slice(&hi.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(payload);
    }
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Decode one part file; `None` on any framing or CRC violation.
pub fn decode_part(bytes: &[u8], expect_aeu: usize) -> Option<Vec<PartitionImage>> {
    if bytes.len() < PART_MAGIC.len() + 12 || &bytes[..8] != PART_MAGIC {
        return None;
    }
    let body = &bytes[..bytes.len() - 4];
    let crc = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().unwrap());
    if crc32(body) != crc {
        return None;
    }
    let mut cur = &body[8..];
    let aeu = take_u32(&mut cur)? as usize;
    if aeu != expect_aeu {
        return None;
    }
    let n = take_u32(&mut cur)? as usize;
    let mut images = Vec::with_capacity(n.min(cur.len() / 28));
    for _ in 0..n {
        let object = DataObjectId(take_u32(&mut cur)?);
        let lo = take_u64(&mut cur)?;
        let hi = take_u64(&mut cur)?;
        let len = take_u64(&mut cur)? as usize;
        if cur.len() < len {
            return None;
        }
        images.push(PartitionImage {
            object,
            range: (lo, hi),
            payload: cur[..len].to_vec(),
        });
        cur = &cur[len..];
    }
    if cur.is_empty() {
        Some(images)
    } else {
        None
    }
}

fn take_u32(buf: &mut &[u8]) -> Option<u32> {
    if buf.len() < 4 {
        return None;
    }
    let v = u32::from_le_bytes(buf[..4].try_into().unwrap());
    *buf = &buf[4..];
    Some(v)
}

fn take_u64(buf: &mut &[u8]) -> Option<u64> {
    if buf.len() < 8 {
        return None;
    }
    let v = u64::from_le_bytes(buf[..8].try_into().unwrap());
    *buf = &buf[8..];
    Some(v)
}

fn encode_manifest(m: &Manifest) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MANIFEST_MAGIC);
    out.extend_from_slice(&m.seq.to_le_bytes());
    out.extend_from_slice(&(m.cuts.len() as u32).to_le_bytes());
    for cut in &m.cuts {
        out.extend_from_slice(&cut.to_le_bytes());
    }
    out.extend_from_slice(&(m.objects.len() as u32).to_le_bytes());
    for o in &m.objects {
        out.extend_from_slice(&o.descriptor.id.0.to_le_bytes());
        out.push(o.descriptor.class.tag());
        out.extend_from_slice(&o.descriptor.domain.to_le_bytes());
        out.extend_from_slice(&(o.descriptor.name.len() as u32).to_le_bytes());
        out.extend_from_slice(o.descriptor.name.as_bytes());
        out.extend_from_slice(&o.enqueued.to_le_bytes());
        out.extend_from_slice(&o.executed.to_le_bytes());
    }
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Decode and validate a manifest image; `None` rejects corruption.
pub fn decode_manifest(bytes: &[u8]) -> Option<Manifest> {
    if bytes.len() < MANIFEST_MAGIC.len() + 12 || &bytes[..8] != MANIFEST_MAGIC {
        return None;
    }
    let body = &bytes[..bytes.len() - 4];
    let crc = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().unwrap());
    if crc32(body) != crc {
        return None;
    }
    let mut cur = &body[8..];
    let seq = take_u64(&mut cur)?;
    let n_aeus = take_u32(&mut cur)? as usize;
    if cur.len() < n_aeus.checked_mul(8)? {
        return None;
    }
    let mut cuts = Vec::with_capacity(n_aeus);
    for _ in 0..n_aeus {
        cuts.push(take_u64(&mut cur)?);
    }
    let n_objects = take_u32(&mut cur)? as usize;
    let mut objects = Vec::with_capacity(n_objects.min(cur.len() / 33));
    for _ in 0..n_objects {
        let id = DataObjectId(take_u32(&mut cur)?);
        let class = ObjectClass::from_tag(take_u8(&mut cur)?)?;
        let domain = take_u64(&mut cur)?;
        let name_len = take_u32(&mut cur)? as usize;
        if cur.len() < name_len {
            return None;
        }
        let name = String::from_utf8(cur[..name_len].to_vec()).ok()?;
        cur = &cur[name_len..];
        let enqueued = take_u64(&mut cur)?;
        let executed = take_u64(&mut cur)?;
        objects.push(ManifestObject {
            descriptor: ObjectDescriptor {
                id,
                class,
                domain,
                name,
            },
            enqueued,
            executed,
        });
    }
    if cur.is_empty() {
        Some(Manifest { seq, cuts, objects })
    } else {
        None
    }
}

fn take_u8(buf: &mut &[u8]) -> Option<u8> {
    let (&b, rest) = buf.split_first()?;
    *buf = rest;
    Some(b)
}

/// Trace one checkpoint phase transition.  Checkpoints are engine-level,
/// not AEU-level; their events land in AEU 0's ring by convention.  A
/// crashed checkpoint leaves `PHASE_BEGIN` (and possibly
/// `PHASE_PARTS_WRITTEN`) without a `PHASE_COMMITTED` — exactly the
/// signature an observer needs to spot an abandoned `.tmp` directory.
fn emit_phase(engine: &Engine, seq: u64, phase: u8) {
    engine.telemetry_shard(AeuId(0)).ring.emit(Stamped {
        at_ns: now_ns(),
        aeu: 0,
        event: TraceEvent::CheckpointPhase { seq, phase },
    });
}

fn write_file_synced(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let mut f = File::create(path)?;
    f.write_all(bytes)?;
    f.sync_data()?;
    Ok(())
}

fn sync_dir(path: &Path) -> std::io::Result<()> {
    File::open(path)?.sync_all()
}

/// Write checkpoint `seq` of a **drained** engine under `base`.
///
/// The engine must be quiesced (`run_until_drained`) and every journal
/// synced (`cuts` are the post-sync LSNs) before calling.  Serialization
/// is sequential — AEUs are not `Sync` — but the part files are written
/// and fsynced by one thread per file, the NUMA-partitioned analogue of
/// parallel checkpoint writers.
pub fn write_checkpoint(
    engine: &Engine,
    base: &Path,
    seq: u64,
    cuts: &[u64],
    fail: &FailPoints,
) -> std::io::Result<()> {
    emit_phase(engine, seq, PHASE_BEGIN);
    let tmp = base.join(format!("ckpt-{seq}.tmp"));
    if tmp.exists() {
        fs::remove_dir_all(&tmp)?;
    }
    fs::create_dir_all(&tmp)?;

    let encoded: Vec<Vec<u8>> = engine
        .aeu_ids()
        .iter()
        .map(|&a| encode_part(a.index(), &engine.aeu(a).serialize_partitions()))
        .collect();

    let results: Vec<std::io::Result<()>> = std::thread::scope(|s| {
        let handles: Vec<_> = encoded
            .iter()
            .enumerate()
            .map(|(i, bytes)| {
                let tmp = &tmp;
                s.spawn(move || {
                    if fail.crashed() || fail.hit(FP_CHECKPOINT_PARTIAL) {
                        return Ok(());
                    }
                    write_file_synced(&tmp.join(part_name(i)), bytes)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for r in results {
        r?;
    }

    if fail.crashed() {
        return Ok(());
    }
    emit_phase(engine, seq, PHASE_PARTS_WRITTEN);
    if fail.hit(FP_CHECKPOINT_PRE_MANIFEST) {
        return Ok(());
    }

    let telemetry = engine.telemetry();
    let ledger: std::collections::HashMap<DataObjectId, (u64, u64)> = telemetry
        .objects
        .iter()
        .map(|o| (o.object, (o.enqueued, o.executed)))
        .collect();
    let manifest = Manifest {
        seq,
        cuts: cuts.to_vec(),
        objects: engine
            .describe_objects()
            .into_iter()
            .map(|descriptor| {
                let (enqueued, executed) = ledger.get(&descriptor.id).copied().unwrap_or((0, 0));
                ManifestObject {
                    descriptor,
                    enqueued,
                    executed,
                }
            })
            .collect(),
    };
    write_file_synced(&tmp.join("MANIFEST"), &encode_manifest(&manifest))?;
    sync_dir(&tmp)?;
    fs::rename(&tmp, ckpt_dir(base, seq))?;
    sync_dir(base)?;
    emit_phase(engine, seq, PHASE_COMMITTED);
    Ok(())
}

/// Find the newest *complete* checkpoint under `base`: a `ckpt-<seq>`
/// directory whose manifest exists and passes its CRC.  Incomplete
/// `.tmp` staging directories and corrupt manifests are skipped.
pub fn find_latest(base: &Path) -> std::io::Result<Option<(PathBuf, Manifest)>> {
    let mut best: Option<(PathBuf, Manifest)> = None;
    let entries = match fs::read_dir(base) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    for entry in entries {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(seq_str) = name.strip_prefix("ckpt-") else {
            continue;
        };
        if seq_str.parse::<u64>().is_err() {
            continue; // `.tmp` staging or stray files
        }
        let path = entry.path();
        let Ok(bytes) = fs::read(path.join("MANIFEST")) else {
            continue;
        };
        let Some(manifest) = decode_manifest(&bytes) else {
            continue;
        };
        if best.as_ref().is_none_or(|(_, b)| manifest.seq > b.seq) {
            best = Some((path, manifest));
        }
    }
    Ok(best)
}

/// Read and validate one part file of a complete checkpoint.
pub fn read_part(ckpt: &Path, aeu: usize) -> std::io::Result<Vec<PartitionImage>> {
    let path = ckpt.join(part_name(aeu));
    let bytes = fs::read(&path)?;
    decode_part(&bytes, aeu).ok_or_else(|| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("corrupt checkpoint part {}", path.display()),
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_roundtrips_and_rejects_corruption() {
        let m = Manifest {
            seq: 7,
            cuts: vec![8, 120, 8, 4096],
            objects: vec![ManifestObject {
                descriptor: ObjectDescriptor {
                    id: DataObjectId(0),
                    class: ObjectClass::Hash,
                    domain: 1 << 16,
                    name: "orders".into(),
                },
                enqueued: 10,
                executed: 10,
            }],
        };
        let bytes = encode_manifest(&m);
        assert_eq!(decode_manifest(&bytes), Some(m));
        for i in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0x40;
            assert_eq!(decode_manifest(&corrupt), None, "flip at byte {i}");
        }
        assert_eq!(decode_manifest(&bytes[..bytes.len() - 1]), None);
    }

    #[test]
    fn part_codec_roundtrips() {
        let parts = vec![
            (DataObjectId(0), (0, 512), vec![1u8, 2, 3]),
            (DataObjectId(2), (512, 1024), Vec::new()),
        ];
        let bytes = encode_part(3, &parts);
        let images = decode_part(&bytes, 3).unwrap();
        assert_eq!(images.len(), 2);
        assert_eq!(images[0].object, DataObjectId(0));
        assert_eq!(images[0].range, (0, 512));
        assert_eq!(images[0].payload, vec![1, 2, 3]);
        assert!(decode_part(&bytes, 2).is_none(), "wrong AEU rejected");
        assert!(decode_part(&bytes[..bytes.len() - 1], 3).is_none());
    }
}
