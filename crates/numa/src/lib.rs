//! # eris-numa — simulated NUMA platform
//!
//! ERIS ("ERIS: A NUMA-Aware In-Memory Storage Engine for Analytical
//! Workloads", Kissinger et al., ADMS'14) was evaluated on three physical
//! NUMA machines: a 4-node Intel box, an 8-node AMD box, and a 64-node SGI
//! UV 2000.  This crate reproduces those platforms in software so the engine
//! above it can be exercised and measured without the hardware:
//!
//! * [`topology`] — nodes, cores, and the interconnect graph (QPI,
//!   HyperTransport with split sublinks, NumaLink hypercubes), with
//!   precomputed shortest routes between every node pair.
//! * [`machines`] — faithful builders for the three machines of Table 1 of
//!   the paper, plus a generic builder for custom platforms.
//! * [`cost`] — the per-distance latency/bandwidth cost model calibrated
//!   against Table 2 of the paper.
//! * [`flows`] — a max-min fair bandwidth-sharing solver that turns a set of
//!   concurrent memory flows into per-flow throughput, modelling link and
//!   memory-controller contention.
//! * [`clock`] — the virtual clock used by the cooperative runtime.
//! * [`counters`] — per-link and per-memory-controller byte counters, the
//!   software analogue of the likwid/linkstat measurements of Section 4.
//! * [`cache`] — a set-associative last-level-cache simulator with MESIF
//!   line states and a coherence directory (Figures 10 and 11).
//! * [`affinity`] — thread-to-core pinning via `libc` for the threaded
//!   runtime.

#![deny(unsafe_op_in_unsafe_fn)]

pub mod affinity;
pub mod cache;
pub mod clock;
pub mod cost;
pub mod counters;
pub mod flows;
pub mod machines;
pub mod topology;

pub use cache::{CacheConfig, CacheSim, LineState};
pub use clock::VirtualClock;
pub use cost::{CostModel, DistanceClass};
pub use counters::HwCounters;
pub use flows::{Flow, FlowSolver};
pub use machines::{amd_machine, intel_machine, sgi_machine, MachineSpec};
pub use topology::{CoreId, LinkId, LinkKind, NodeId, Topology};
