//! Virtual time for the cooperative runtime.
//!
//! The simulator measures throughput against this clock instead of wall
//! time, which is what makes a 512-core SGI machine measurable on a laptop:
//! every epoch of engine work advances the clock by the epoch's modelled
//! critical path.

/// A monotonically advancing virtual clock with nanosecond resolution.
#[derive(Debug, Clone, Default)]
pub struct VirtualClock {
    ns: f64,
}

impl VirtualClock {
    pub fn new() -> Self {
        Self::default()
    }

    /// Current virtual time in nanoseconds.
    #[inline]
    pub fn now_ns(&self) -> f64 {
        self.ns
    }

    /// Current virtual time in seconds.
    #[inline]
    pub fn now_secs(&self) -> f64 {
        self.ns / 1e9
    }

    /// Advance by `delta_ns` nanoseconds.  Negative deltas are rejected.
    #[inline]
    pub fn advance_ns(&mut self, delta_ns: f64) {
        assert!(delta_ns >= 0.0, "clock cannot run backwards ({delta_ns})");
        self.ns += delta_ns;
    }

    /// Reset to zero (used between benchmark phases).
    pub fn reset(&mut self) {
        self.ns = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advances_and_converts() {
        let mut c = VirtualClock::new();
        assert_eq!(c.now_ns(), 0.0);
        c.advance_ns(2.5e9);
        assert!((c.now_secs() - 2.5).abs() < 1e-12);
        c.advance_ns(0.0);
        assert!((c.now_secs() - 2.5).abs() < 1e-12);
        c.reset();
        assert_eq!(c.now_ns(), 0.0);
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn rejects_negative_delta() {
        VirtualClock::new().advance_ns(-1.0);
    }
}
