//! Access cost model: latency and bandwidth per (source, home) node pair,
//! plus the distance classification used to regenerate Table 2 of the paper.

use crate::topology::{LinkKind, NodeId, Topology};

/// A distance class as reported in Table 2 (e.g. "1 hop HT (split,single)").
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DistanceClass {
    /// Access to the node's own memory.
    Local,
    /// The other processor of the same SGI compute blade (via the HARP).
    SecondProcessor,
    /// A remote route: hop count plus the narrowest link kind on the route.
    Remote { hops: u8, worst: WorstLink },
}

/// Ordered link-kind summary of a route (narrowest wins).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum WorstLink {
    Qpi,
    HtFull,
    HtSplitSingle,
    HtSplitDual,
    NumaLink,
}

impl DistanceClass {
    /// The row label used in Table 2.
    pub fn label(&self) -> String {
        match self {
            DistanceClass::Local => "local".to_string(),
            DistanceClass::SecondProcessor => "2nd processor".to_string(),
            DistanceClass::Remote { hops, worst } => match worst {
                WorstLink::Qpi => format!("{hops} hop QPI"),
                WorstLink::HtFull => format!("{hops} hop HT (full link)"),
                WorstLink::HtSplitSingle => format!("{hops} hop HT (split,single)"),
                WorstLink::HtSplitDual => format!("{hops} hop HT (split,dual)"),
                WorstLink::NumaLink => format!("{hops} hop NUMALink"),
            },
        }
    }
}

/// One row of the regenerated Table 2.
#[derive(Debug, Clone)]
pub struct Table2Row {
    pub class: DistanceClass,
    pub bandwidth_gbps: f64,
    pub latency_ns: f64,
}

/// Latency/bandwidth oracle over a [`Topology`].
///
/// All engine components consult this instead of touching the topology's
/// routes directly, so baselines and ERIS pay exactly the same modelled
/// costs.
#[derive(Debug, Clone)]
pub struct CostModel<'a> {
    topo: &'a Topology,
}

impl<'a> CostModel<'a> {
    pub fn new(topo: &'a Topology) -> Self {
        CostModel { topo }
    }

    /// Read latency from a core on `src` to memory homed on `home`, in ns.
    #[inline]
    pub fn latency_ns(&self, src: NodeId, home: NodeId) -> f64 {
        if src == home {
            self.topo.node_spec(home).local_latency_ns
        } else {
            self.topo.route(src, home).expect("connected").latency_ns
        }
    }

    /// Achievable single-requester read bandwidth in GB/s.
    #[inline]
    pub fn bandwidth_gbps(&self, src: NodeId, home: NodeId) -> f64 {
        if src == home {
            self.topo.node_spec(home).local_bandwidth_gbps
        } else {
            self.topo
                .route(src, home)
                .expect("connected")
                .bandwidth_gbps
        }
    }

    /// Uncontended time to stream `bytes` from `home` into a core on `src`:
    /// one route latency plus the transfer at route bandwidth.
    pub fn stream_time_ns(&self, src: NodeId, home: NodeId, bytes: u64) -> f64 {
        self.latency_ns(src, home) + bytes as f64 / self.bandwidth_gbps(src, home)
    }

    /// Classify a node pair for Table 2 reporting.
    pub fn distance_class(&self, src: NodeId, home: NodeId) -> DistanceClass {
        if src == home {
            return DistanceClass::Local;
        }
        let route = self.topo.route(src, home).expect("connected");
        let kinds: Vec<LinkKind> = route
            .links
            .iter()
            .map(|l| self.topo.links()[l.index()].kind)
            .collect();
        let numalinks = kinds.iter().filter(|k| **k == LinkKind::NumaLink).count();
        if kinds
            .iter()
            .any(|k| matches!(k, LinkKind::QpiToHarp | LinkKind::NumaLink))
        {
            // SGI classes count NumaLink hops only.
            return if numalinks == 0 {
                DistanceClass::SecondProcessor
            } else {
                DistanceClass::Remote {
                    hops: numalinks as u8,
                    worst: WorstLink::NumaLink,
                }
            };
        }
        let worst = kinds
            .iter()
            .map(|k| match k {
                LinkKind::Qpi => WorstLink::Qpi,
                LinkKind::HtFull => WorstLink::HtFull,
                LinkKind::HtSplitSingle => WorstLink::HtSplitSingle,
                LinkKind::HtSplitDual => WorstLink::HtSplitDual,
                LinkKind::QpiToHarp | LinkKind::NumaLink => unreachable!(),
            })
            .max()
            .expect("remote route has links");
        DistanceClass::Remote {
            hops: route.hops,
            worst,
        }
    }

    /// Regenerate the Table 2 rows for this machine: one row per distinct
    /// distance class, with its measured-model bandwidth and latency.
    pub fn table2_rows(&self) -> Vec<Table2Row> {
        let mut rows: std::collections::BTreeMap<DistanceClass, (f64, f64)> =
            std::collections::BTreeMap::new();
        for src in self.topo.nodes() {
            for home in self.topo.nodes() {
                let class = self.distance_class(src, home);
                let bw = self.bandwidth_gbps(src, home);
                let lat = self.latency_ns(src, home);
                rows.entry(class).or_insert((bw, lat));
            }
        }
        rows.into_iter()
            .map(|(class, (bandwidth_gbps, latency_ns))| Table2Row {
                class,
                bandwidth_gbps,
                latency_ns,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machines::{amd_machine, intel_machine, sgi_machine};

    #[test]
    fn intel_table2_matches_paper() {
        let t = intel_machine();
        let rows = CostModel::new(&t).table2_rows();
        assert_eq!(rows.len(), 2);
        let local = rows
            .iter()
            .find(|r| r.class == DistanceClass::Local)
            .unwrap();
        assert!((local.bandwidth_gbps - 26.7).abs() < 1e-9);
        assert!((local.latency_ns - 129.0).abs() < 1e-9);
        let remote = rows
            .iter()
            .find(|r| r.class != DistanceClass::Local)
            .unwrap();
        assert_eq!(remote.class.label(), "1 hop QPI");
        assert!((remote.bandwidth_gbps - 10.7).abs() < 1e-9);
        assert!((remote.latency_ns - 193.0).abs() < 1e-9);
    }

    #[test]
    fn amd_table2_has_six_rows() {
        let t = amd_machine();
        let rows = CostModel::new(&t).table2_rows();
        // local + 1hop full + 1hop single + 1hop dual + 2hop single + 2hop dual
        assert_eq!(
            rows.len(),
            6,
            "{:?}",
            rows.iter().map(|r| r.class.label()).collect::<Vec<_>>()
        );
        let bw: Vec<u64> = rows
            .iter()
            .map(|r| (r.bandwidth_gbps * 10.0).round() as u64)
            .collect();
        for expected in [164, 58, 42, 29, 37, 18] {
            assert!(
                bw.contains(&expected),
                "missing bandwidth {expected} in {bw:?}"
            );
        }
    }

    #[test]
    fn sgi_table2_has_six_rows() {
        let t = sgi_machine();
        let rows = CostModel::new(&t).table2_rows();
        assert_eq!(rows.len(), 6);
        let labels: Vec<String> = rows.iter().map(|r| r.class.label()).collect();
        for l in ["local", "2nd processor", "1 hop NUMALink", "4 hop NUMALink"] {
            assert!(labels.iter().any(|x| x == l), "missing {l} in {labels:?}");
        }
    }

    #[test]
    fn stream_time_combines_latency_and_bandwidth() {
        let t = intel_machine();
        let cm = CostModel::new(&t);
        let n0 = crate::topology::NodeId(0);
        let n1 = crate::topology::NodeId(1);
        // 1070 bytes at 10.7 GB/s = 100 ns transfer + 193 ns latency.
        let ns = cm.stream_time_ns(n0, n1, 1070);
        assert!((ns - 293.0).abs() < 1e-9);
        assert!(cm.stream_time_ns(n0, n0, 1070) < ns);
    }
}
