//! Hardware-event counters: the software analogue of the likwid /
//! linkstat-uv / VampirTrace measurements of Section 4 of the paper.
//!
//! [`HwCounters`] accumulates bytes per interconnect link (per direction)
//! and per integrated memory controller, plus local/remote request tallies.
//! The `fig12` experiment reads these over a steady-state window to
//! reproduce the link and memory-controller activity chart.

use crate::topology::{NodeId, Topology};

/// Byte counters over one topology.
#[derive(Debug, Clone)]
pub struct HwCounters {
    /// Bytes per link and direction: `link_bytes[link][dir]`.
    link_bytes: Vec<[u64; 2]>,
    /// Bytes served by each node's memory controller.
    imc_bytes: Vec<u64>,
    /// Number of local memory requests (src == home).
    pub local_requests: u64,
    /// Number of remote memory requests.
    pub remote_requests: u64,
}

impl HwCounters {
    pub fn new(topo: &Topology) -> Self {
        HwCounters {
            link_bytes: vec![[0, 0]; topo.links().len()],
            imc_bytes: vec![0; topo.num_nodes()],
            local_requests: 0,
            remote_requests: 0,
        }
    }

    /// Record `bytes` moving from memory homed at `home` to a core on `src`.
    pub fn record(&mut self, topo: &Topology, src: NodeId, home: NodeId, bytes: u64) {
        self.imc_bytes[home.index()] += bytes;
        if src == home {
            self.local_requests += 1;
            return;
        }
        self.remote_requests += 1;
        let route = topo.route(src, home).expect("connected");
        let mut cur = src;
        for lid in &route.links {
            let l = &topo.links()[lid.index()];
            let reversed = l.b == cur;
            self.link_bytes[lid.index()][reversed as usize] += bytes;
            cur = if reversed { l.a } else { l.b };
        }
    }

    /// Total bytes that crossed any interconnect link (both directions).
    pub fn total_link_bytes(&self) -> u64 {
        self.link_bytes.iter().map(|d| d[0] + d[1]).sum()
    }

    /// Total bytes served by all memory controllers.
    pub fn total_imc_bytes(&self) -> u64 {
        self.imc_bytes.iter().sum()
    }

    /// Bytes served by one node's memory controller.
    pub fn imc_bytes(&self, node: NodeId) -> u64 {
        self.imc_bytes[node.index()]
    }

    /// Bytes over one link, summed over both directions.
    pub fn link_total(&self, link: usize) -> u64 {
        self.link_bytes[link][0] + self.link_bytes[link][1]
    }

    /// Per-direction bytes over one link: `[a→b, b→a]` in the link's
    /// endpoint order (`Topology::links()[link].a` / `.b`).  Feeds the
    /// live link-attribution panel and the telemetry snapshot.
    pub fn link_bytes(&self, link: usize) -> [u64; 2] {
        self.link_bytes[link]
    }

    /// Number of links this counter set tracks.
    pub fn num_links(&self) -> usize {
        self.link_bytes.len()
    }

    /// Fraction of requests that were remote.
    pub fn remote_fraction(&self) -> f64 {
        let total = self.local_requests + self.remote_requests;
        if total == 0 {
            0.0
        } else {
            self.remote_requests as f64 / total as f64
        }
    }

    /// Zero all counters (start of a measurement window).
    pub fn reset(&mut self) {
        for d in &mut self.link_bytes {
            *d = [0, 0];
        }
        for b in &mut self.imc_bytes {
            *b = 0;
        }
        self.local_requests = 0;
        self.remote_requests = 0;
    }

    /// Fold another counter set into this one.
    pub fn merge(&mut self, other: &HwCounters) {
        assert_eq!(self.link_bytes.len(), other.link_bytes.len());
        assert_eq!(self.imc_bytes.len(), other.imc_bytes.len());
        for (a, b) in self.link_bytes.iter_mut().zip(&other.link_bytes) {
            a[0] += b[0];
            a[1] += b[1];
        }
        for (a, b) in self.imc_bytes.iter_mut().zip(&other.imc_bytes) {
            *a += *b;
        }
        self.local_requests += other.local_requests;
        self.remote_requests += other.remote_requests;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machines::{amd_machine, intel_machine};

    #[test]
    fn local_access_touches_only_imc() {
        let t = intel_machine();
        let mut c = HwCounters::new(&t);
        c.record(&t, NodeId(2), NodeId(2), 1000);
        assert_eq!(c.total_link_bytes(), 0);
        assert_eq!(c.imc_bytes(NodeId(2)), 1000);
        assert_eq!(c.local_requests, 1);
        assert_eq!(c.remote_requests, 0);
        assert_eq!(c.remote_fraction(), 0.0);
    }

    #[test]
    fn remote_access_touches_links_on_route() {
        let t = amd_machine();
        // Find a 2-hop pair: its traffic must appear on two links.
        let (a, b) = t
            .nodes()
            .flat_map(|a| t.nodes().map(move |b| (a, b)))
            .find(|&(a, b)| a != b && t.hops(a, b) == 2)
            .unwrap();
        let mut c = HwCounters::new(&t);
        c.record(&t, a, b, 500);
        assert_eq!(c.total_link_bytes(), 1000, "500 bytes over each of 2 links");
        assert_eq!(c.imc_bytes(b), 500);
        assert_eq!(c.remote_requests, 1);
    }

    #[test]
    fn link_bytes_are_attributed_per_direction() {
        let t = intel_machine();
        // A directly-linked pair: traffic each way lands in opposite
        // direction slots of the same link.
        let (a, b) = t
            .nodes()
            .flat_map(|a| t.nodes().map(move |b| (a, b)))
            .find(|&(a, b)| a != b && t.hops(a, b) == 1)
            .unwrap();
        let mut c = HwCounters::new(&t);
        c.record(&t, a, b, 100);
        c.record(&t, b, a, 300);
        let (link, _) = (0..c.num_links())
            .map(|i| (i, c.link_bytes(i)))
            .find(|(_, d)| d[0] + d[1] > 0)
            .unwrap();
        let d = c.link_bytes(link);
        assert_eq!(d[0] + d[1], 400);
        assert!(d[0] > 0 && d[1] > 0, "both directions saw traffic: {d:?}");
        assert_ne!(d[0], d[1], "asymmetric traffic stays asymmetric");
    }

    #[test]
    fn reset_and_merge() {
        let t = intel_machine();
        let mut a = HwCounters::new(&t);
        let mut b = HwCounters::new(&t);
        a.record(&t, NodeId(0), NodeId(1), 100);
        b.record(&t, NodeId(1), NodeId(0), 300);
        a.merge(&b);
        assert_eq!(a.total_imc_bytes(), 400);
        assert_eq!(a.remote_requests, 2);
        a.reset();
        assert_eq!(a.total_imc_bytes(), 0);
        assert_eq!(a.total_link_bytes(), 0);
        assert_eq!(a.remote_requests, 0);
    }
}
