//! NUMA topology: nodes (multiprocessors), cores, and the interconnect graph.
//!
//! A [`Topology`] is an undirected multigraph whose vertices are NUMA nodes
//! and whose edges are point-to-point interconnect links (QPI,
//! HyperTransport, NumaLink).  Shortest routes between every node pair are
//! precomputed at construction time: minimal hop count first, maximal
//! bottleneck bandwidth as the tie breaker — the same policy hardware
//! routing tables use on these machines.

use std::fmt;

/// Identifier of a NUMA node (a multiprocessor with its own IMC).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u16);

impl NodeId {
    /// The node id as a plain index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "N{}", self.0)
    }
}

/// Identifier of a hardware core.  Cores are numbered globally; node-local
/// numbering is derived from the topology's cores-per-node count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CoreId(pub u32);

impl CoreId {
    /// The core id as a plain index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C{}", self.0)
    }
}

/// Index of a link in [`Topology::links`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LinkId(pub u32);

impl LinkId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The physical flavour of an interconnect link.  The flavour matters for
/// reporting (Table 2 distinguishes split HyperTransport sublinks) and for
/// the per-class bandwidth calibration in [`crate::cost`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkKind {
    /// Intel QuickPath Interconnect, full link (Intel machine).
    Qpi,
    /// HyperTransport with the full 16-bit width (AMD intra-package link).
    HtFull,
    /// HyperTransport 8-bit sublink where only one sublink of the pair is
    /// populated (AMD, "split,single" in Table 2).
    HtSplitSingle,
    /// HyperTransport 8-bit sublink where both sublinks of the physical link
    /// are occupied by different connections (AMD, "split,dual").
    HtSplitDual,
    /// QPI from a processor to the HARP hub inside an SGI compute blade.
    QpiToHarp,
    /// NumaLink6 connection between two HARP hubs (SGI blades).
    NumaLink,
}

impl LinkKind {
    /// Human-readable name matching the paper's terminology.
    pub fn name(self) -> &'static str {
        match self {
            LinkKind::Qpi => "QPI",
            LinkKind::HtFull => "HT (full link)",
            LinkKind::HtSplitSingle => "HT (split,single)",
            LinkKind::HtSplitDual => "HT (split,dual)",
            LinkKind::QpiToHarp => "QPI-to-HARP",
            LinkKind::NumaLink => "NumaLink6",
        }
    }
}

/// A point-to-point interconnect link between two NUMA nodes.
///
/// `bandwidth_gbps` is the *achievable memory-read* bandwidth over this link
/// (the measured values of Table 2), which on real hardware is below the
/// nominal wire rate (`nominal_gbps`).
#[derive(Debug, Clone)]
pub struct Link {
    pub a: NodeId,
    pub b: NodeId,
    pub kind: LinkKind,
    /// Achievable one-direction read bandwidth in GB/s.
    pub bandwidth_gbps: f64,
    /// Nominal wire bandwidth in GB/s (Table 1).
    pub nominal_gbps: f64,
    /// Added latency for one traversal of this link, in nanoseconds.
    pub latency_ns: f64,
}

/// Per-node hardware description.
#[derive(Debug, Clone)]
pub struct NodeSpec {
    /// Number of cores on this multiprocessor.
    pub cores: u16,
    /// Local memory capacity in GiB.
    pub memory_gib: u64,
    /// Local read bandwidth of the integrated memory controller in GB/s.
    pub local_bandwidth_gbps: f64,
    /// Local access latency in nanoseconds.
    pub local_latency_ns: f64,
    /// Last-level cache size in MiB.
    pub llc_mib: u32,
}

/// A precomputed route between two distinct nodes.
#[derive(Debug, Clone)]
pub struct Route {
    /// Links traversed, in order from source to home node.
    pub links: Vec<LinkId>,
    /// End-to-end read latency in nanoseconds (calibrated, includes the
    /// local DRAM access at the home node).
    pub latency_ns: f64,
    /// Achievable single-requester bandwidth over this route in GB/s.
    pub bandwidth_gbps: f64,
    /// Number of inter-node hops (links traversed).
    pub hops: u8,
}

/// A complete NUMA platform: nodes, cores, links, and routes.
#[derive(Debug, Clone)]
pub struct Topology {
    name: String,
    nodes: Vec<NodeSpec>,
    links: Vec<Link>,
    /// routes[src][dst]; `None` on the diagonal (local access).
    routes: Vec<Vec<Option<Route>>>,
    /// For the SGI machine: which blade each node belongs to (nodes sharing
    /// a blade reach each other through the HARP, the "2nd processor" class).
    blade_of: Option<Vec<u16>>,
}

impl Topology {
    /// Build a topology and precompute all pairwise routes.
    ///
    /// `route_overrides` lets machine builders replace the bottleneck-derived
    /// route bandwidth/latency with measured per-hop-class values (see
    /// [`crate::machines`]); it receives the raw route and may adjust it.
    pub fn new(
        name: impl Into<String>,
        nodes: Vec<NodeSpec>,
        links: Vec<Link>,
        blade_of: Option<Vec<u16>>,
        mut calibrate: impl FnMut(NodeId, NodeId, &mut Route),
    ) -> Self {
        assert!(!nodes.is_empty(), "topology needs at least one node");
        if let Some(b) = &blade_of {
            assert_eq!(b.len(), nodes.len(), "blade_of must cover every node");
        }
        let n = nodes.len();
        let mut adjacency: Vec<Vec<(usize, LinkId)>> = vec![Vec::new(); n];
        for (i, l) in links.iter().enumerate() {
            assert!(
                l.a.index() < n && l.b.index() < n,
                "link endpoints in range"
            );
            assert_ne!(l.a, l.b, "no self links");
            adjacency[l.a.index()].push((l.b.index(), LinkId(i as u32)));
            adjacency[l.b.index()].push((l.a.index(), LinkId(i as u32)));
        }

        let mut routes: Vec<Vec<Option<Route>>> = vec![vec![None; n]; n];
        #[allow(clippy::needless_range_loop)]
        for src in 0..n {
            let paths = shortest_paths(src, &adjacency, &links);
            for (dst, path) in paths.into_iter().enumerate() {
                if src == dst {
                    continue;
                }
                let path = path.unwrap_or_else(|| {
                    panic!("topology '{}' is disconnected: no route {src}->{dst}", "?")
                });
                let mut latency = nodes[dst].local_latency_ns;
                let mut bw = f64::INFINITY;
                for lid in &path {
                    let l = &links[lid.index()];
                    latency += l.latency_ns;
                    bw = bw.min(l.bandwidth_gbps);
                }
                let mut route = Route {
                    hops: path.len() as u8,
                    links: path,
                    latency_ns: latency,
                    bandwidth_gbps: bw,
                };
                calibrate(NodeId(src as u16), NodeId(dst as u16), &mut route);
                routes[src][dst] = Some(route);
            }
        }

        Topology {
            name: name.into(),
            nodes,
            links,
            routes,
            blade_of,
        }
    }

    /// Machine name, e.g. `"AMD machine"`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of NUMA nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Total number of cores across all nodes.
    pub fn num_cores(&self) -> usize {
        self.nodes.iter().map(|s| s.cores as usize).sum()
    }

    /// All nodes.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u16).map(NodeId)
    }

    /// All cores, in node order.
    pub fn cores(&self) -> impl Iterator<Item = CoreId> + '_ {
        (0..self.num_cores() as u32).map(CoreId)
    }

    /// The node a core belongs to.  Cores are laid out contiguously per node.
    pub fn node_of_core(&self, core: CoreId) -> NodeId {
        let mut c = core.index();
        for (i, s) in self.nodes.iter().enumerate() {
            if c < s.cores as usize {
                return NodeId(i as u16);
            }
            c -= s.cores as usize;
        }
        panic!("core {core} out of range ({} cores)", self.num_cores());
    }

    /// The cores of one node, as global core ids.
    pub fn cores_of_node(&self, node: NodeId) -> std::ops::Range<u32> {
        let mut start = 0u32;
        for s in &self.nodes[..node.index()] {
            start += s.cores as u32;
        }
        start..start + self.nodes[node.index()].cores as u32
    }

    /// Hardware description of a node.
    #[inline]
    pub fn node_spec(&self, node: NodeId) -> &NodeSpec {
        &self.nodes[node.index()]
    }

    /// All interconnect links.
    #[inline]
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// The precomputed route from `src` to `dst`, or `None` when local.
    #[inline]
    pub fn route(&self, src: NodeId, dst: NodeId) -> Option<&Route> {
        // BOUNDS: NodeIds come from this topology, which precomputed the
        // full routes matrix over its own node count.
        self.routes[src.index()][dst.index()].as_ref()
    }

    /// Inter-node hop distance (0 when `src == dst`).
    pub fn hops(&self, src: NodeId, dst: NodeId) -> u8 {
        self.route(src, dst).map_or(0, |r| r.hops)
    }

    /// The blade a node belongs to, when this topology models blades (SGI).
    pub fn blade_of(&self, node: NodeId) -> Option<u16> {
        self.blade_of.as_ref().map(|b| b[node.index()])
    }

    /// Aggregate local read bandwidth of all memory controllers in GB/s —
    /// the upper bound for a perfectly NUMA-local scan (Figure 9 reports
    /// ERIS at 93.6% of this value).
    pub fn aggregate_local_bandwidth_gbps(&self) -> f64 {
        self.nodes.iter().map(|s| s.local_bandwidth_gbps).sum()
    }

    /// Total installed memory in GiB.
    pub fn total_memory_gib(&self) -> u64 {
        self.nodes.iter().map(|s| s.memory_gib).sum()
    }
}

/// BFS by hop count with max-bottleneck-bandwidth tie breaking.
///
/// Returns, for every destination, the chosen link path from `src` (empty
/// for `src` itself, `None` if unreachable).
fn shortest_paths(
    src: usize,
    adjacency: &[Vec<(usize, LinkId)>],
    links: &[Link],
) -> Vec<Option<Vec<LinkId>>> {
    let n = adjacency.len();
    let mut dist = vec![u32::MAX; n];
    let mut bottleneck = vec![0f64; n];
    let mut pred: Vec<Option<(usize, LinkId)>> = vec![None; n];
    dist[src] = 0;
    bottleneck[src] = f64::INFINITY;
    let mut frontier = vec![src];
    while !frontier.is_empty() {
        let mut next = Vec::new();
        for &u in &frontier {
            for &(v, lid) in &adjacency[u] {
                let nb = bottleneck[u].min(links[lid.index()].bandwidth_gbps);
                let nd = dist[u] + 1;
                if nd < dist[v] || (nd == dist[v] && nb > bottleneck[v]) {
                    if dist[v] == u32::MAX {
                        next.push(v);
                    }
                    dist[v] = nd;
                    bottleneck[v] = nb;
                    pred[v] = Some((u, lid));
                }
            }
        }
        frontier = next;
    }

    (0..n)
        .map(|dst| {
            if dist[dst] == u32::MAX {
                return None;
            }
            let mut path = Vec::new();
            let mut cur = dst;
            while cur != src {
                let (p, lid) = pred[cur].expect("reachable node has predecessor");
                path.push(lid);
                cur = p;
            }
            path.reverse();
            Some(path)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(cores: u16) -> NodeSpec {
        NodeSpec {
            cores,
            memory_gib: 32,
            local_bandwidth_gbps: 25.0,
            local_latency_ns: 100.0,
            llc_mib: 20,
        }
    }

    fn link(a: u16, b: u16, bw: f64) -> Link {
        Link {
            a: NodeId(a),
            b: NodeId(b),
            kind: LinkKind::Qpi,
            bandwidth_gbps: bw,
            nominal_gbps: bw,
            latency_ns: 60.0,
        }
    }

    fn line(n: usize) -> Topology {
        let nodes = (0..n).map(|_| spec(4)).collect();
        let links = (0..n - 1)
            .map(|i| link(i as u16, i as u16 + 1, 10.0))
            .collect();
        Topology::new("line", nodes, links, None, |_, _, _| {})
    }

    #[test]
    fn core_to_node_mapping_is_contiguous() {
        let t = line(3);
        assert_eq!(t.num_cores(), 12);
        assert_eq!(t.node_of_core(CoreId(0)), NodeId(0));
        assert_eq!(t.node_of_core(CoreId(3)), NodeId(0));
        assert_eq!(t.node_of_core(CoreId(4)), NodeId(1));
        assert_eq!(t.node_of_core(CoreId(11)), NodeId(2));
        assert_eq!(t.cores_of_node(NodeId(1)), 4..8);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn core_out_of_range_panics() {
        line(2).node_of_core(CoreId(99));
    }

    #[test]
    fn routes_follow_hop_counts() {
        let t = line(4);
        assert_eq!(t.hops(NodeId(0), NodeId(0)), 0);
        assert_eq!(t.hops(NodeId(0), NodeId(1)), 1);
        assert_eq!(t.hops(NodeId(0), NodeId(3)), 3);
        // Latency accumulates per hop on top of the home node's local latency.
        let r = t.route(NodeId(0), NodeId(3)).unwrap();
        assert_eq!(r.links.len(), 3);
        assert!((r.latency_ns - (100.0 + 3.0 * 60.0)).abs() < 1e-9);
    }

    #[test]
    fn tie_break_prefers_fatter_bottleneck() {
        // Two 2-hop routes from 0 to 3: via 1 (thin) and via 2 (fat).
        let nodes = (0..4).map(|_| spec(1)).collect();
        let links = vec![
            link(0, 1, 2.0),
            link(1, 3, 2.0),
            link(0, 2, 8.0),
            link(2, 3, 8.0),
        ];
        let t = Topology::new("diamond", nodes, links, None, |_, _, _| {});
        let r = t.route(NodeId(0), NodeId(3)).unwrap();
        assert_eq!(r.hops, 2);
        assert!((r.bandwidth_gbps - 8.0).abs() < 1e-9);
    }

    #[test]
    fn aggregate_bandwidth_sums_nodes() {
        let t = line(3);
        assert!((t.aggregate_local_bandwidth_gbps() - 75.0).abs() < 1e-9);
        assert_eq!(t.total_memory_gib(), 96);
    }

    #[test]
    fn calibration_hook_can_override() {
        let nodes = (0..2).map(|_| spec(1)).collect();
        let links = vec![link(0, 1, 10.0)];
        let t = Topology::new("pair", nodes, links, None, |_, _, r| {
            r.bandwidth_gbps = 5.5;
            r.latency_ns = 123.0;
        });
        let r = t.route(NodeId(0), NodeId(1)).unwrap();
        assert!((r.bandwidth_gbps - 5.5).abs() < 1e-9);
        assert!((r.latency_ns - 123.0).abs() < 1e-9);
    }
}
