//! Builders for the three evaluation machines of the paper (Table 1) and a
//! generic builder for custom platforms.
//!
//! * **Intel machine** — 4× Xeon E7-4860, 40 cores, 128 GiB, fully connected
//!   by QPI (Figure 2a).
//! * **AMD machine** — 4× Opteron 6274 dual-node packages ⇒ 8 NUMA nodes,
//!   64 cores, 64 GiB; HyperTransport with full intra-package links and
//!   split (8-bit) sublinks between packages, some routes taking two hops
//!   (Figure 2b).
//! * **SGI machine** — SGI UV 2000: 64× Xeon E5-4650L on 32 compute blades
//!   in 4 IRUs, 512 cores, 8 TiB; processors reach their blade's HARP hub
//!   over QPI, HARPs are meshed by NumaLink6 as a 3D *enhanced* hypercube
//!   per IRU plus two inter-IRU connections per blade (Figure 2c).
//!
//! Route latencies and bandwidths are calibrated against the measured values
//! of Table 2 rather than derived purely from per-link sums, exactly because
//! the paper reports *measured* end-to-end numbers (protocol overheads are
//! not additive per hop on real hardware).

use crate::topology::{Link, LinkKind, NodeId, NodeSpec, Topology};

/// Table 1 row set for one machine, used by the `table1` experiment.
#[derive(Debug, Clone)]
pub struct MachineSpec {
    pub name: &'static str,
    pub processors: &'static str,
    pub cores: &'static str,
    pub memory: &'static str,
    pub llc: &'static str,
    pub interconnect: &'static str,
    pub os: &'static str,
}

/// The specification rows of Table 1 for all three machines.
pub fn machine_specs() -> Vec<MachineSpec> {
    vec![
        MachineSpec {
            name: "Intel machine",
            processors: "4x Intel Xeon E7-4860",
            cores: "40 cores (80 HW threads)",
            memory: "128 GB memory (32 GB per node)",
            llc: "24 MB LLC per socket",
            interconnect: "QPI: 12.8 GB/s per link",
            os: "Ubuntu 13.4 server (3.8.0-29)",
        },
        MachineSpec {
            name: "AMD machine",
            processors: "4x AMD Opteron 6274 (dual node)",
            cores: "64 cores",
            memory: "64 GB memory (8 GB per node)",
            llc: "12 MB LLC per socket (2x 6 MB)",
            interconnect: "HyperTransport: 12.8 GB/s per link",
            os: "Ubuntu 13.4 server (3.8.0-31)",
        },
        MachineSpec {
            name: "SGI machine",
            processors: "64x Intel Xeon E5-4650L",
            cores: "512 cores",
            memory: "8 TB memory (128 GB per node)",
            llc: "20 MB LLC per socket",
            interconnect: "QPI: 16 GB/s to HARP; NumaLink6: 2x 6.7 GB/s between HARPs",
            os: "SLES 11 SP2 (3.0.93-0.5)",
        },
    ]
}

/// The Intel machine: 4 nodes fully connected by QPI.
///
/// Table 2 (Intel): local 26.7 GB/s @ 129 ns; 1-hop QPI 10.7 GB/s @ 193 ns.
pub fn intel_machine() -> Topology {
    let nodes = (0..4)
        .map(|_| NodeSpec {
            cores: 10,
            memory_gib: 32,
            local_bandwidth_gbps: 26.7,
            local_latency_ns: 129.0,
            llc_mib: 24,
        })
        .collect();
    let mut links = Vec::new();
    for a in 0..4u16 {
        for b in a + 1..4 {
            links.push(Link {
                a: NodeId(a),
                b: NodeId(b),
                kind: LinkKind::Qpi,
                bandwidth_gbps: 10.7,
                nominal_gbps: 12.8,
                latency_ns: 64.0, // 193 - 129
            });
        }
    }
    Topology::new("Intel machine", nodes, links, None, |_, _, r| {
        // Every remote pair is exactly one QPI hop; pin to measured values.
        debug_assert_eq!(r.hops, 1);
        r.latency_ns = 193.0;
        r.bandwidth_gbps = 10.7;
    })
}

/// The AMD machine: 4 dual-node packages ⇒ 8 NUMA nodes.
///
/// Intra-package siblings use a dedicated full 16-bit HyperTransport link;
/// inter-package connections use 8-bit sublinks — some with only one sublink
/// populated ("split,single"), some with both occupied by different
/// connections ("split,dual") — and the graph is not fully connected, so
/// certain routes take two hops.  Distance classes and measured values per
/// Table 2 (AMD).
pub fn amd_machine() -> Topology {
    let nodes = (0..8)
        .map(|_| NodeSpec {
            cores: 8,
            memory_gib: 8,
            local_bandwidth_gbps: 16.4,
            local_latency_ns: 85.0,
            llc_mib: 6, // 12 MB per socket = 2 x 6 MB per node
        })
        .collect();

    let ht = |a: u16, b: u16, kind: LinkKind| {
        let (bw, nominal, lat) = match kind {
            LinkKind::HtFull => (5.8, 12.8, 51.0),
            LinkKind::HtSplitSingle => (4.2, 6.4, 67.0),
            LinkKind::HtSplitDual => (2.9, 6.4, 67.0),
            _ => unreachable!("AMD machine only uses HyperTransport links"),
        };
        Link {
            a: NodeId(a),
            b: NodeId(b),
            kind,
            bandwidth_gbps: bw,
            nominal_gbps: nominal,
            latency_ns: lat,
        }
    };

    let mut links = Vec::new();
    // Dedicated full-width links between the two dies of one package.
    for p in 0..4u16 {
        links.push(ht(2 * p, 2 * p + 1, LinkKind::HtFull));
    }
    // Even dies form a ring with single sublinks and two dual diagonals;
    // odd dies mirror it.  This reproduces the paper's six bandwidth and
    // four latency classes with a diameter of two.
    for base in 0..2u16 {
        let ring = [0u16, 2, 6, 4];
        for i in 0..4 {
            links.push(ht(
                ring[i] + base,
                ring[(i + 1) % 4] + base,
                LinkKind::HtSplitSingle,
            ));
        }
        links.push(ht(base, 6 + base, LinkKind::HtSplitDual));
        links.push(ht(2 + base, 4 + base, LinkKind::HtSplitDual));
    }

    let links_for_calibration = links.clone();
    Topology::new("AMD machine", nodes, links, None, move |_, _, r| {
        // Measured route classes (Table 2, AMD): classify by hop count and
        // the narrowest link kind on the route.
        let worst = r
            .links
            .iter()
            .map(|l| links_for_calibration[l.index()].kind)
            .max_by_key(|k| match k {
                LinkKind::HtFull => 0,
                LinkKind::HtSplitSingle => 1,
                LinkKind::HtSplitDual => 2,
                _ => unreachable!(),
            })
            .expect("remote route has at least one link");
        let (bw, lat) = match (r.hops, worst) {
            (1, LinkKind::HtFull) => (5.8, 136.0),
            (1, LinkKind::HtSplitSingle) => (4.2, 152.0),
            (1, LinkKind::HtSplitDual) => (2.9, 152.0),
            (2, LinkKind::HtFull | LinkKind::HtSplitSingle) => (3.7, 196.0),
            (2, LinkKind::HtSplitDual) => (1.8, 196.0),
            (h, k) => unreachable!("unexpected AMD route: {h} hops over {k:?}"),
        };
        r.bandwidth_gbps = bw;
        r.latency_ns = lat;
    })
}

/// The SGI UV 2000: 64 nodes on 32 blades in 4 IRUs.
///
/// Each blade holds two processors joined to a HARP hub; the two processors
/// of a blade reach each other through the hub (the "2nd processor" class of
/// Table 2).  Blades inside an IRU form a 3D enhanced hypercube (every blade
/// connects to every other except its antipode); every blade additionally
/// connects to the same-position blade of the two neighbouring IRUs, giving
/// routes of up to four NumaLink hops.
pub fn sgi_machine() -> Topology {
    const NODES: u16 = 64;
    const BLADES: u16 = 32;
    let nodes = (0..NODES)
        .map(|_| NodeSpec {
            cores: 8,
            memory_gib: 128,
            local_bandwidth_gbps: 36.2,
            local_latency_ns: 81.0,
            llc_mib: 20,
        })
        .collect();

    let mut links = Vec::new();
    // Intra-blade processor pair via the HARP (QPI both sides).
    for b in 0..BLADES {
        links.push(Link {
            a: NodeId(2 * b),
            b: NodeId(2 * b + 1),
            kind: LinkKind::QpiToHarp,
            bandwidth_gbps: 9.5,
            nominal_gbps: 16.0,
            latency_ns: 319.0, // 400 - 81
        });
    }
    let numalink = |a: u16, b: u16| Link {
        a: NodeId(a),
        b: NodeId(b),
        kind: LinkKind::NumaLink,
        bandwidth_gbps: 7.5,
        nominal_gbps: 6.7,
        latency_ns: 120.0, // incremental per-hop cost; calibrated per class below
    };
    // Blade connections: each consists of two NumaLink6 links, one per
    // processor, so the node-level graph links same-side processors.
    let mut blade_edges: Vec<(u16, u16)> = Vec::new();
    for iru in 0..4u16 {
        for p in 0..8u16 {
            let b = iru * 8 + p;
            // Enhanced hypercube: all positions except the antipode (p ^ 7).
            for q in p + 1..8 {
                if q != p ^ 7 {
                    blade_edges.push((b, iru * 8 + q));
                }
            }
            // Two inter-IRU connections: same position, next IRU (ring).
            let next = ((iru + 1) % 4) * 8 + p;
            if b < next {
                blade_edges.push((b, next));
            } else {
                blade_edges.push((next, b));
            }
        }
    }
    blade_edges.sort_unstable();
    blade_edges.dedup();
    for (ba, bb) in blade_edges {
        for side in 0..2u16 {
            links.push(numalink(2 * ba + side, 2 * bb + side));
        }
    }

    let blade_of: Vec<u16> = (0..NODES).map(|n| n / 2).collect();
    let links_for_calibration = links.clone();
    Topology::new(
        "SGI machine",
        nodes,
        links,
        Some(blade_of),
        move |_, _, r| {
            let numalink_hops = r
                .links
                .iter()
                .filter(|l| links_for_calibration[l.index()].kind == LinkKind::NumaLink)
                .count();
            let (bw, lat) = match numalink_hops {
                0 => (9.5, 400.0), // 2nd processor, same blade
                1 => (7.5, 510.0),
                2 => (7.5, 630.0),
                3 => (7.1, 750.0),
                4 => (6.5, 870.0),
                h => unreachable!("unexpected SGI route of {h} NumaLink hops"),
            };
            r.bandwidth_gbps = bw;
            r.latency_ns = lat;
        },
    )
}

/// A generic fully connected machine for tests and parameter sweeps.
pub fn custom_machine(
    name: &str,
    num_nodes: u16,
    cores_per_node: u16,
    local_bandwidth_gbps: f64,
    local_latency_ns: f64,
    link_bandwidth_gbps: f64,
    link_latency_ns: f64,
) -> Topology {
    let nodes = (0..num_nodes)
        .map(|_| NodeSpec {
            cores: cores_per_node,
            memory_gib: 32,
            local_bandwidth_gbps,
            local_latency_ns,
            llc_mib: 16,
        })
        .collect();
    let mut links = Vec::new();
    for a in 0..num_nodes {
        for b in a + 1..num_nodes {
            links.push(Link {
                a: NodeId(a),
                b: NodeId(b),
                kind: LinkKind::Qpi,
                bandwidth_gbps: link_bandwidth_gbps,
                nominal_gbps: link_bandwidth_gbps,
                latency_ns: link_latency_ns,
            });
        }
    }
    Topology::new(name, nodes, links, None, |_, _, _| {})
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::NodeId;

    #[test]
    fn intel_is_fully_connected_single_hop() {
        let t = intel_machine();
        assert_eq!(t.num_nodes(), 4);
        assert_eq!(t.num_cores(), 40);
        for a in t.nodes() {
            for b in t.nodes() {
                if a != b {
                    let r = t.route(a, b).unwrap();
                    assert_eq!(r.hops, 1);
                    assert!((r.latency_ns - 193.0).abs() < 1e-9);
                    assert!((r.bandwidth_gbps - 10.7).abs() < 1e-9);
                }
            }
        }
        assert_eq!(t.total_memory_gib(), 128);
    }

    #[test]
    fn amd_has_six_bandwidth_and_four_latency_classes() {
        let t = amd_machine();
        assert_eq!(t.num_nodes(), 8);
        assert_eq!(t.num_cores(), 64);
        let mut bws = std::collections::BTreeSet::new();
        let mut lats = std::collections::BTreeSet::new();
        bws.insert(164u64); // local, in tenths of GB/s
        lats.insert(850u64); // local, in tenths of ns
        for a in t.nodes() {
            for b in t.nodes() {
                if a != b {
                    let r = t.route(a, b).unwrap();
                    assert!(r.hops <= 2, "AMD diameter must be two hops");
                    bws.insert((r.bandwidth_gbps * 10.0).round() as u64);
                    lats.insert((r.latency_ns * 10.0).round() as u64);
                }
            }
        }
        assert_eq!(bws.len(), 6, "six distinct bandwidths: {bws:?}");
        assert_eq!(lats.len(), 4, "four distinct latencies: {lats:?}");
    }

    #[test]
    fn amd_sibling_nodes_use_full_link() {
        let t = amd_machine();
        for p in 0..4u16 {
            let r = t.route(NodeId(2 * p), NodeId(2 * p + 1)).unwrap();
            assert_eq!(r.hops, 1);
            assert!((r.bandwidth_gbps - 5.8).abs() < 1e-9);
            assert!((r.latency_ns - 136.0).abs() < 1e-9);
        }
    }

    #[test]
    fn amd_disparity_matches_paper() {
        // Paper: factor 9.1 in bandwidth and 2.3 in latency between local
        // and the furthest remote access.
        let t = amd_machine();
        let worst_bw = t
            .nodes()
            .flat_map(|a| t.nodes().filter_map(move |b| (a != b).then_some((a, b))))
            .map(|(a, b)| t.route(a, b).unwrap().bandwidth_gbps)
            .fold(f64::INFINITY, f64::min);
        assert!((16.4 / worst_bw - 9.1).abs() < 0.05);
    }

    #[test]
    fn sgi_has_expected_distance_classes() {
        let t = sgi_machine();
        assert_eq!(t.num_nodes(), 64);
        assert_eq!(t.num_cores(), 512);
        assert_eq!(t.total_memory_gib(), 8192);
        let mut lat_classes = std::collections::BTreeSet::new();
        for a in t.nodes() {
            for b in t.nodes() {
                if a != b {
                    let r = t.route(a, b).unwrap();
                    lat_classes.insert(r.latency_ns as u64);
                }
            }
        }
        assert_eq!(
            lat_classes.into_iter().collect::<Vec<_>>(),
            vec![400, 510, 630, 750, 870],
            "five remote distance classes on the SGI machine"
        );
    }

    #[test]
    fn sgi_same_blade_is_second_processor_class() {
        let t = sgi_machine();
        let r = t.route(NodeId(0), NodeId(1)).unwrap();
        assert!((r.latency_ns - 400.0).abs() < 1e-9);
        assert!((r.bandwidth_gbps - 9.5).abs() < 1e-9);
        assert_eq!(t.blade_of(NodeId(0)), t.blade_of(NodeId(1)));
        assert_ne!(t.blade_of(NodeId(0)), t.blade_of(NodeId(2)));
    }

    #[test]
    fn sgi_disparity_matches_paper() {
        // Paper: differences up to factor 5.5 (bandwidth) and 10.7 (latency).
        let t = sgi_machine();
        let (mut worst_bw, mut worst_lat) = (f64::INFINITY, 0f64);
        for a in t.nodes() {
            for b in t.nodes() {
                if a != b {
                    let r = t.route(a, b).unwrap();
                    worst_bw = worst_bw.min(r.bandwidth_gbps);
                    worst_lat = worst_lat.max(r.latency_ns);
                }
            }
        }
        assert!((36.2 / worst_bw - 5.57).abs() < 0.1);
        assert!((worst_lat / 81.0 - 10.7).abs() < 0.1);
    }

    #[test]
    fn sgi_aggregate_bandwidth() {
        // 64 nodes x 36.2 GB/s; Figure 9's "possible accumulated memory
        // bandwidth of the system".
        let t = sgi_machine();
        assert!((t.aggregate_local_bandwidth_gbps() - 64.0 * 36.2).abs() < 1e-6);
    }

    #[test]
    fn custom_machine_is_complete_graph() {
        let t = custom_machine("test", 6, 4, 20.0, 100.0, 8.0, 50.0);
        for a in t.nodes() {
            for b in t.nodes() {
                if a != b {
                    assert_eq!(t.route(a, b).unwrap().hops, 1);
                }
            }
        }
        assert_eq!(t.links().len(), 15);
    }

    #[test]
    fn table1_specs_cover_all_machines() {
        let specs = machine_specs();
        assert_eq!(specs.len(), 3);
        assert!(specs.iter().any(|s| s.name == "SGI machine"));
    }
}
