//! Thread-to-core pinning for the threaded runtime.
//!
//! ERIS pins every AEU to a designated core (Section 3.1 of the paper).  On
//! the simulated platforms there are usually more AEUs than host cores; the
//! threaded runtime therefore pins AEU *i* to host core `i % host_cores`,
//! which preserves the property that an AEU never migrates.

use std::io;

/// Number of cores available to this process.
pub fn available_cores() -> usize {
    // SAFETY: sysconf is always safe to call.
    let n = unsafe { libc::sysconf(libc::_SC_NPROCESSORS_ONLN) };
    if n < 1 {
        1
    } else {
        n as usize
    }
}

/// Pin the calling thread to the given host core.  Core indices beyond the
/// host's range wrap around, so simulated core ids can be passed directly.
#[cfg(target_os = "linux")]
pub fn pin_current_thread(core: usize) -> io::Result<()> {
    let core = core % available_cores();
    // SAFETY: CPU_ZERO/CPU_SET initialize the set before use and
    // sched_setaffinity only reads it.
    unsafe {
        let mut set: libc::cpu_set_t = std::mem::zeroed();
        libc::CPU_ZERO(&mut set);
        libc::CPU_SET(core, &mut set);
        if libc::sched_setaffinity(0, std::mem::size_of::<libc::cpu_set_t>(), &set) != 0 {
            return Err(io::Error::last_os_error());
        }
    }
    Ok(())
}

/// Pinning is a no-op on non-Linux hosts.
#[cfg(not(target_os = "linux"))]
pub fn pin_current_thread(_core: usize) -> io::Result<()> {
    Ok(())
}

/// The core of the current thread's CPU, if the platform exposes it.
#[cfg(target_os = "linux")]
pub fn current_core() -> Option<usize> {
    // SAFETY: sched_getcpu has no preconditions.
    let c = unsafe { libc::sched_getcpu() };
    if c < 0 {
        None
    } else {
        Some(c as usize)
    }
}

#[cfg(not(target_os = "linux"))]
pub fn current_core() -> Option<usize> {
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reports_at_least_one_core() {
        assert!(available_cores() >= 1);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn pinning_to_core_zero_succeeds_and_sticks() {
        pin_current_thread(0).expect("pin to core 0");
        // After pinning to core 0 we must be running there.
        assert_eq!(current_core(), Some(0));
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn pinning_wraps_out_of_range_cores() {
        // Core index beyond the host's range must still succeed (modulo).
        pin_current_thread(available_cores() * 7).expect("wrapped pin");
    }
}
