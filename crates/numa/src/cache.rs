//! Last-level-cache simulation with MESIF coherence states.
//!
//! Figures 10 and 11 of the paper explain ERIS' lookup advantage through the
//! L3 cache: the NUMA-agnostic shared index keeps the same tree lines in
//! *many* caches at once (hits land on `Shared`/`Forward` lines, 79.3% on
//! the Intel machine), which shrinks the effective aggregate capacity, while
//! ERIS partitions give each cache a private working set (97% of hits on
//! `Modified`/`Exclusive` lines).
//!
//! This module implements a set-associative LLC per NUMA node with a
//! directory-backed MESIF protocol, using *set sampling* so that tera-scale
//! workloads stay simulable: only addresses mapping to a `1/2^sample_shift`
//! subset of the sets are simulated, which preserves miss ratios (set
//! sampling is the standard technique in architecture simulation).

use crate::topology::NodeId;
use std::collections::HashMap;

/// MESIF line states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LineState {
    Modified,
    Exclusive,
    Shared,
    /// The single cache designated to forward a shared line (Intel MESIF).
    Forward,
}

impl LineState {
    /// True for states implying the line also lives in another cache.
    pub fn is_shared_class(self) -> bool {
        matches!(self, LineState::Shared | LineState::Forward)
    }
}

/// Configuration of the simulated LLC hierarchy.
#[derive(Debug, Clone)]
pub struct CacheConfig {
    /// LLC capacity per NUMA node in bytes.
    pub llc_bytes: u64,
    /// Associativity.
    pub ways: u32,
    /// Cache line size in bytes.
    pub line_size: u32,
    /// Simulate only sets whose index has these low bits zero.
    pub sample_shift: u32,
}

impl CacheConfig {
    /// Config for a node with `llc_mib` MiB of L3 (16-way, 64 B lines,
    /// 1/16 set sampling).
    pub fn for_llc_mib(llc_mib: u32) -> Self {
        CacheConfig {
            llc_bytes: llc_mib as u64 * 1024 * 1024,
            ways: 16,
            line_size: 64,
            sample_shift: 4,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Way {
    tag: u64,
    state: LineState,
    stamp: u32,
}

struct NodeCache {
    /// `sets[set][way]`; `None` = invalid way.
    sets: Vec<Vec<Option<Way>>>,
    tick: u32,
}

/// Outcome of one simulated access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// The address did not map to a sampled set; nothing was simulated.
    NotSampled,
    /// Hit; the state of the line at hit time.
    Hit(LineState),
    /// Miss; whether another cache supplied the data.
    Miss { served_by_cache: bool },
}

/// Aggregate statistics across all nodes.
#[derive(Debug, Clone, Default)]
pub struct CacheStats {
    pub hits_modified: u64,
    pub hits_exclusive: u64,
    pub hits_shared: u64,
    pub hits_forward: u64,
    pub misses: u64,
    pub writebacks: u64,
}

impl CacheStats {
    pub fn hits(&self) -> u64 {
        self.hits_modified + self.hits_exclusive + self.hits_shared + self.hits_forward
    }

    /// Misses / requests — the quotient the paper computes from the AMD
    /// "L3 Cache Misses" and "Requests to L3 Cache" counters (Figure 10).
    pub fn miss_ratio(&self) -> f64 {
        let total = self.hits() + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }

    /// Fraction of hits on `Shared` or `Forward` lines (Figure 11).
    pub fn shared_forward_hit_fraction(&self) -> f64 {
        let hits = self.hits();
        if hits == 0 {
            0.0
        } else {
            (self.hits_shared + self.hits_forward) as f64 / hits as f64
        }
    }

    /// Fraction of hits on `Modified` or `Exclusive` lines (Figure 11).
    pub fn modified_exclusive_hit_fraction(&self) -> f64 {
        let hits = self.hits();
        if hits == 0 {
            0.0
        } else {
            (self.hits_modified + self.hits_exclusive) as f64 / hits as f64
        }
    }
}

/// The multi-node LLC + directory simulator.
pub struct CacheSim {
    cfg: CacheConfig,
    caches: Vec<NodeCache>,
    /// line address -> bitmask of holder nodes (<= 64 nodes).
    directory: HashMap<u64, u64>,
    num_sets: u64,
    stats: CacheStats,
}

impl CacheSim {
    /// Build a simulator for `num_nodes` caches of the given configuration.
    pub fn new(num_nodes: usize, cfg: CacheConfig) -> Self {
        assert!(num_nodes <= 64, "directory uses a 64-bit holder mask");
        assert!(cfg.line_size.is_power_of_two());
        let lines = cfg.llc_bytes / cfg.line_size as u64;
        let raw_sets = (lines / cfg.ways as u64).max(1);
        // Round down to a power of two for cheap set indexing.
        let num_sets = if raw_sets.is_power_of_two() {
            raw_sets
        } else {
            raw_sets.next_power_of_two() / 2
        };
        let sampled_sets = (num_sets >> cfg.sample_shift).max(1) as usize;
        let caches = (0..num_nodes)
            .map(|_| NodeCache {
                sets: vec![vec![None; cfg.ways as usize]; sampled_sets],
                tick: 0,
            })
            .collect();
        CacheSim {
            cfg,
            caches,
            directory: HashMap::new(),
            num_sets,
            stats: CacheStats::default(),
        }
    }

    /// Line address and sampled-set slot for a byte address, if sampled.
    #[inline]
    fn locate(&self, addr: u64) -> Option<(u64, usize)> {
        let line = addr / self.cfg.line_size as u64;
        let set = line % self.num_sets;
        let mask = (1u64 << self.cfg.sample_shift) - 1;
        if set & mask != 0 {
            return None;
        }
        Some((line, (set >> self.cfg.sample_shift) as usize))
    }

    /// Simulate one access by a core on `node` to byte address `addr`.
    pub fn access(&mut self, node: NodeId, addr: u64, write: bool) -> Access {
        let Some((line, slot)) = self.locate(addr) else {
            return Access::NotSampled;
        };
        let n = node.index();
        let slot_len = self.caches[n].sets[slot].len();

        // Probe.
        let mut hit_way = None;
        for w in 0..slot_len {
            if let Some(way) = self.caches[n].sets[slot][w] {
                if way.tag == line {
                    hit_way = Some((w, way.state));
                    break;
                }
            }
        }

        if let Some((w, state)) = hit_way {
            self.caches[n].tick += 1;
            let tick = self.caches[n].tick;
            let way = self.caches[n].sets[slot][w].as_mut().unwrap();
            way.stamp = tick;
            match state {
                LineState::Modified => self.stats.hits_modified += 1,
                LineState::Exclusive => self.stats.hits_exclusive += 1,
                LineState::Shared => self.stats.hits_shared += 1,
                LineState::Forward => self.stats.hits_forward += 1,
            }
            if write {
                match state {
                    LineState::Modified => {}
                    LineState::Exclusive => {
                        self.caches[n].sets[slot][w].as_mut().unwrap().state = LineState::Modified;
                    }
                    LineState::Shared | LineState::Forward => {
                        // Upgrade: invalidate all other holders.
                        self.invalidate_others(line, slot, n);
                        self.caches[n].sets[slot][w].as_mut().unwrap().state = LineState::Modified;
                    }
                }
            }
            return Access::Hit(state);
        }

        // Miss.
        self.stats.misses += 1;
        let holders = self.directory.get(&line).copied().unwrap_or(0);
        let others = holders & !(1u64 << n);
        let served_by_cache = others != 0;
        let new_state = if write {
            if served_by_cache {
                self.invalidate_others(line, slot, n);
            }
            LineState::Modified
        } else if served_by_cache {
            // Demote every current holder to Shared; the requester becomes
            // the Forward copy (MESIF: most recent requester forwards).
            let mut writebacks = 0;
            for o in holder_nodes(others) {
                if let Some(way) = self.find_way_mut(o, slot, line) {
                    if way.state == LineState::Modified {
                        writebacks += 1;
                    }
                    way.state = LineState::Shared;
                }
            }
            self.stats.writebacks += writebacks;
            LineState::Forward
        } else {
            LineState::Exclusive
        };
        self.install(n, slot, line, new_state);
        Access::Miss { served_by_cache }
    }

    fn find_way_mut(&mut self, node: usize, slot: usize, line: u64) -> Option<&mut Way> {
        self.caches[node].sets[slot]
            .iter_mut()
            .flatten()
            .find(|w| w.tag == line)
    }

    /// Remove the line from every cache except `keep`, updating the directory.
    fn invalidate_others(&mut self, line: u64, slot: usize, keep: usize) {
        let holders = self.directory.get(&line).copied().unwrap_or(0);
        for o in holder_nodes(holders & !(1u64 << keep)) {
            let set = &mut self.caches[o].sets[slot];
            for way in set.iter_mut() {
                if way.is_some_and(|w| w.tag == line) {
                    if way.unwrap().state == LineState::Modified {
                        self.stats.writebacks += 1;
                    }
                    *way = None;
                }
            }
        }
        self.directory.insert(line, 1u64 << keep);
    }

    /// Install a line into node `n`, evicting LRU if the set is full.
    fn install(&mut self, n: usize, slot: usize, line: u64, state: LineState) {
        self.caches[n].tick += 1;
        let tick = self.caches[n].tick;
        let set = &mut self.caches[n].sets[slot];
        // Free way, or LRU victim.
        let victim = match set.iter().position(|w| w.is_none()) {
            Some(free) => free,
            None => {
                let (idx, _) = set
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, w)| w.unwrap().stamp)
                    .expect("non-empty set");
                idx
            }
        };
        if let Some(old) = set[victim] {
            if old.state == LineState::Modified {
                self.stats.writebacks += 1;
            }
            let entry = self.directory.entry(old.tag).or_insert(0);
            *entry &= !(1u64 << n);
            if *entry == 0 {
                self.directory.remove(&old.tag);
            }
        }
        set[victim] = Some(Way {
            tag: line,
            state,
            stamp: tick,
        });
        *self.directory.entry(line).or_insert(0) |= 1u64 << n;
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Reset statistics (keep cache contents, e.g. after warmup).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }
}

#[inline]
fn holder_nodes(mask: u64) -> impl Iterator<Item = usize> {
    let mut m = mask;
    std::iter::from_fn(move || {
        if m == 0 {
            None
        } else {
            let i = m.trailing_zeros() as usize;
            m &= m - 1;
            Some(i)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_sim(nodes: usize) -> CacheSim {
        // Tiny unsampled cache: 4 KiB, 4-way, 64 B lines => 16 sets.
        CacheSim::new(
            nodes,
            CacheConfig {
                llc_bytes: 4096,
                ways: 4,
                line_size: 64,
                sample_shift: 0,
            },
        )
    }

    #[test]
    fn first_read_is_exclusive_miss_then_hit() {
        let mut sim = small_sim(2);
        assert_eq!(
            sim.access(NodeId(0), 0x1000, false),
            Access::Miss {
                served_by_cache: false
            }
        );
        assert_eq!(
            sim.access(NodeId(0), 0x1000, false),
            Access::Hit(LineState::Exclusive)
        );
        assert_eq!(sim.stats().hits_exclusive, 1);
        assert_eq!(sim.stats().misses, 1);
    }

    #[test]
    fn second_reader_demotes_to_shared_forward() {
        let mut sim = small_sim(2);
        sim.access(NodeId(0), 0x40, false);
        assert_eq!(
            sim.access(NodeId(1), 0x40, false),
            Access::Miss {
                served_by_cache: true
            }
        );
        // The original holder now hits on a Shared line, the new one on F.
        assert_eq!(
            sim.access(NodeId(0), 0x40, false),
            Access::Hit(LineState::Shared)
        );
        assert_eq!(
            sim.access(NodeId(1), 0x40, false),
            Access::Hit(LineState::Forward)
        );
        assert!(sim.stats().shared_forward_hit_fraction() > 0.0);
    }

    #[test]
    fn write_upgrades_and_invalidates_others() {
        let mut sim = small_sim(2);
        sim.access(NodeId(0), 0x80, false);
        sim.access(NodeId(1), 0x80, false); // both hold it shared
        sim.access(NodeId(0), 0x80, true); // upgrade on node 0
        assert_eq!(
            sim.access(NodeId(0), 0x80, false),
            Access::Hit(LineState::Modified)
        );
        // Node 1 lost its copy: served from node 0's cache.
        assert_eq!(
            sim.access(NodeId(1), 0x80, false),
            Access::Miss {
                served_by_cache: true
            }
        );
        assert!(sim.stats().writebacks >= 1, "M line demoted on remote read");
    }

    #[test]
    fn write_miss_installs_modified() {
        let mut sim = small_sim(1);
        sim.access(NodeId(0), 0xc0, true);
        assert_eq!(
            sim.access(NodeId(0), 0xc0, false),
            Access::Hit(LineState::Modified)
        );
    }

    #[test]
    fn lru_eviction_on_full_set() {
        let mut sim = small_sim(1);
        // 16 sets: addresses with the same (line % 16) collide.
        // Set 0 holds lines 0, 16, 32, ... => byte addrs 0, 0x400, ...
        for i in 0..4u64 {
            sim.access(NodeId(0), i * 16 * 64, false);
        }
        // All four hit.
        for i in 0..4u64 {
            assert!(matches!(
                sim.access(NodeId(0), i * 16 * 64, false),
                Access::Hit(_)
            ));
        }
        // Fifth line evicts the LRU (line 0).
        sim.access(NodeId(0), 4 * 16 * 64, false);
        assert_eq!(
            sim.access(NodeId(0), 0, false),
            Access::Miss {
                served_by_cache: false
            }
        );
    }

    #[test]
    fn working_set_larger_than_cache_has_high_miss_ratio() {
        let mut sim = small_sim(1);
        // 4 KiB cache, 64 KiB working set, two sweeps.
        for _ in 0..2 {
            for addr in (0..65536u64).step_by(64) {
                sim.access(NodeId(0), addr, false);
            }
        }
        assert!(sim.stats().miss_ratio() > 0.9);
    }

    #[test]
    fn working_set_within_cache_has_low_miss_ratio_after_warmup() {
        let mut sim = small_sim(1);
        for addr in (0..2048u64).step_by(64) {
            sim.access(NodeId(0), addr, false);
        }
        sim.reset_stats();
        for _ in 0..10 {
            for addr in (0..2048u64).step_by(64) {
                sim.access(NodeId(0), addr, false);
            }
        }
        assert_eq!(sim.stats().miss_ratio(), 0.0);
    }

    #[test]
    fn sampling_skips_unsampled_sets() {
        let mut sim = CacheSim::new(
            1,
            CacheConfig {
                llc_bytes: 4096,
                ways: 4,
                line_size: 64,
                sample_shift: 2,
            },
        );
        // Line 1 maps to set 1, which is unsampled with shift 2.
        assert_eq!(sim.access(NodeId(0), 64, false), Access::NotSampled);
        // Line 0 maps to set 0, which is sampled.
        assert_ne!(sim.access(NodeId(0), 0, false), Access::NotSampled);
    }

    #[test]
    fn shared_vs_private_working_sets_mirror_figure_11() {
        // 8 nodes all sweeping ONE working set (shared index) versus each
        // sweeping its OWN (ERIS partitions): the shared sweep must hit
        // mostly S/F lines, the private sweep only E/M lines.
        let mut shared = small_sim(8);
        for _ in 0..4 {
            for node in 0..8u16 {
                for addr in (0..2048u64).step_by(64) {
                    shared.access(NodeId(node), addr, false);
                }
            }
        }
        assert!(shared.stats().shared_forward_hit_fraction() > 0.7);

        let mut private = small_sim(8);
        for _ in 0..4 {
            for node in 0..8u16 {
                let base = (node as u64) << 20;
                for addr in (base..base + 2048).step_by(64) {
                    private.access(NodeId(node), addr, false);
                }
            }
        }
        assert!(private.stats().modified_exclusive_hit_fraction() > 0.95);
    }
}
