//! Max-min fair bandwidth sharing over concurrent memory flows.
//!
//! Every memory stream in an epoch of the cooperative runtime becomes a
//! [`Flow`] from the requesting core's node to the memory's home node.  A
//! flow consumes capacity on each interconnect link of its route (in the
//! traversal direction) and on the home node's integrated memory controller
//! (IMC).  The solver assigns each flow a rate by progressive water-filling
//! (max-min fairness): repeatedly saturate the most contended resource and
//! freeze the flows crossing it.  This is how the characteristic shapes of
//! the paper emerge — a Single-RAM scan collapses onto one IMC, an
//! interleaved scan onto the link mesh, and a NUMA-local scan onto the sum
//! of all IMCs.
//!
//! Bandwidths are in GB/s, which conveniently equals bytes per nanosecond.

use crate::topology::{NodeId, Topology};

/// A single memory stream for one epoch.
#[derive(Debug, Clone)]
pub struct Flow {
    /// Node issuing the requests.
    pub src: NodeId,
    /// Node whose memory is read or written.
    pub home: NodeId,
    /// Bytes transferred in this epoch.
    pub bytes: u64,
}

impl Flow {
    pub fn new(src: NodeId, home: NodeId, bytes: u64) -> Self {
        Flow { src, home, bytes }
    }
}

/// Result of a solve: one rate per input flow.
#[derive(Debug, Clone)]
pub struct FlowRates {
    /// Fair-share rate per flow, in GB/s (= bytes/ns).
    pub rates: Vec<f64>,
}

impl FlowRates {
    /// Time for flow `i` to move its bytes at its fair rate, ignoring the
    /// initial route latency (add it from [`crate::cost::CostModel`]).
    pub fn transfer_ns(&self, i: usize, bytes: u64) -> f64 {
        bytes as f64 / self.rates[i]
    }
}

/// Dense resource indexing: per-node IMCs first, then each link twice (one
/// per direction), then one virtual per-flow resource for the route cap.
struct Resources {
    num_imcs: usize,
    num_links: usize,
}

impl Resources {
    #[inline]
    fn imc(&self, node: NodeId) -> usize {
        node.index()
    }
    #[inline]
    fn link(&self, link: usize, reversed: bool) -> usize {
        self.num_imcs + 2 * link + reversed as usize
    }
    #[inline]
    fn flow_cap(&self, flow: usize) -> usize {
        self.num_imcs + 2 * self.num_links + flow
    }
}

/// Max-min fair solver bound to one topology.
pub struct FlowSolver<'a> {
    topo: &'a Topology,
}

impl<'a> FlowSolver<'a> {
    pub fn new(topo: &'a Topology) -> Self {
        FlowSolver { topo }
    }

    /// Resources (dense indices) used by one flow, excluding its cap.
    fn route_resources(&self, res: &Resources, f: &Flow, out: &mut Vec<usize>) {
        out.push(res.imc(f.home));
        if f.src == f.home {
            return;
        }
        let route = self.topo.route(f.src, f.home).expect("connected topology");
        let mut cur = f.src;
        for lid in &route.links {
            let l = &self.topo.links()[lid.index()];
            let reversed = l.b == cur;
            debug_assert!(l.a == cur || l.b == cur, "route links must be contiguous");
            out.push(res.link(lid.index(), reversed));
            cur = if reversed { l.a } else { l.b };
        }
        debug_assert_eq!(cur, f.home);
    }

    /// Compute max-min fair rates for a set of concurrent flows.
    ///
    /// Each flow is additionally capped at its route's single-requester
    /// bandwidth (a lone remote reader cannot exceed the measured per-route
    /// rate even on idle links, because latency limits outstanding requests).
    pub fn solve(&self, flows: &[Flow]) -> FlowRates {
        if flows.is_empty() {
            return FlowRates { rates: Vec::new() };
        }
        let res = Resources {
            num_imcs: self.topo.num_nodes(),
            num_links: self.topo.links().len(),
        };
        let num_resources = res.num_imcs + 2 * res.num_links + flows.len();

        // Capacities.
        let mut cap = vec![0f64; num_resources];
        for n in self.topo.nodes() {
            cap[res.imc(n)] = self.topo.node_spec(n).local_bandwidth_gbps;
        }
        for (i, l) in self.topo.links().iter().enumerate() {
            cap[res.link(i, false)] = l.bandwidth_gbps;
            cap[res.link(i, true)] = l.bandwidth_gbps;
        }

        // Flow -> resources (including the per-flow cap pseudo-resource).
        let mut flow_res: Vec<Vec<usize>> = Vec::with_capacity(flows.len());
        for (i, f) in flows.iter().enumerate() {
            let mut r = Vec::with_capacity(6);
            self.route_resources(&res, f, &mut r);
            let cap_idx = res.flow_cap(i);
            cap[cap_idx] = if f.src == f.home {
                self.topo.node_spec(f.home).local_bandwidth_gbps
            } else {
                self.topo.route(f.src, f.home).unwrap().bandwidth_gbps
            };
            r.push(cap_idx);
            flow_res.push(r);
        }

        // Resource -> flows.
        let mut res_flows: Vec<Vec<u32>> = vec![Vec::new(); num_resources];
        for (i, rs) in flow_res.iter().enumerate() {
            for &r in rs {
                res_flows[r].push(i as u32);
            }
        }

        // Progressive water-filling.
        let mut rates = vec![0f64; flows.len()];
        let mut active = vec![true; flows.len()];
        let mut active_count = vec![0u32; num_resources];
        for rs in &flow_res {
            for &r in rs {
                active_count[r] += 1;
            }
        }
        let mut remaining = flows.len();
        while remaining > 0 {
            // Most contended resource: minimal fair share.
            let mut best_share = f64::INFINITY;
            let mut best_res = usize::MAX;
            for r in 0..num_resources {
                if active_count[r] > 0 {
                    let share = cap[r] / active_count[r] as f64;
                    if share < best_share {
                        best_share = share;
                        best_res = r;
                    }
                }
            }
            debug_assert_ne!(best_res, usize::MAX);
            // Freeze every active flow through it at that share.
            let frozen: Vec<u32> = res_flows[best_res]
                .iter()
                .copied()
                .filter(|&f| active[f as usize])
                .collect();
            for f in frozen {
                let fi = f as usize;
                active[fi] = false;
                rates[fi] = best_share;
                remaining -= 1;
                for &r in &flow_res[fi] {
                    cap[r] = (cap[r] - best_share).max(0.0);
                    active_count[r] -= 1;
                }
            }
        }

        FlowRates { rates }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machines::{custom_machine, intel_machine, sgi_machine};

    fn n(i: u16) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn lone_local_flow_gets_full_imc() {
        let t = intel_machine();
        let r = FlowSolver::new(&t).solve(&[Flow::new(n(0), n(0), 1 << 20)]);
        assert!((r.rates[0] - 26.7).abs() < 1e-9);
    }

    #[test]
    fn lone_remote_flow_capped_at_route_bandwidth() {
        let t = intel_machine();
        let r = FlowSolver::new(&t).solve(&[Flow::new(n(0), n(1), 1 << 20)]);
        assert!(
            (r.rates[0] - 10.7).abs() < 1e-9,
            "QPI-limited: {}",
            r.rates[0]
        );
    }

    #[test]
    fn imc_is_shared_fairly_by_local_readers() {
        let t = intel_machine();
        let flows: Vec<Flow> = (0..4).map(|_| Flow::new(n(0), n(0), 1 << 20)).collect();
        let r = FlowSolver::new(&t).solve(&flows);
        for rate in &r.rates {
            assert!((rate - 26.7 / 4.0).abs() < 1e-9);
        }
    }

    #[test]
    fn single_ram_scan_is_imc_bound() {
        // All four nodes read from node 0: the IMC (26.7) is the bottleneck,
        // not the three QPI links (3 x 10.7 = 32.1).
        let t = intel_machine();
        let flows: Vec<Flow> = (0..4).map(|i| Flow::new(n(i), n(0), 1 << 20)).collect();
        let r = FlowSolver::new(&t).solve(&flows);
        let total: f64 = r.rates.iter().sum();
        assert!((total - 26.7).abs() < 1e-6, "aggregate {total}");
        // The local reader gets the same share as remote ones (max-min).
        assert!((r.rates[0] - 26.7 / 4.0).abs() < 1e-6);
    }

    #[test]
    fn numa_local_scan_reaches_aggregate_bandwidth() {
        let t = intel_machine();
        let flows: Vec<Flow> = (0..4).map(|i| Flow::new(n(i), n(i), 1 << 20)).collect();
        let r = FlowSolver::new(&t).solve(&flows);
        let total: f64 = r.rates.iter().sum();
        assert!((total - 4.0 * 26.7).abs() < 1e-6);
    }

    #[test]
    fn interleaved_scan_is_slower_than_numa_local() {
        // Every node reads from every node.  One AEU consumes its flows
        // *serially* (the cooperative runtime sums per-flow times within an
        // AEU), so the effective per-node rate is the harmonic combination
        // of the fair-share rates — well below a purely local scan.
        let t = intel_machine();
        let mut flows = Vec::new();
        for s in 0..4 {
            for h in 0..4 {
                flows.push(Flow::new(n(s), n(h), 1 << 20));
            }
        }
        let r = FlowSolver::new(&t).solve(&flows);
        // Per node: total bytes / sum of per-flow serial times.
        let mut total = 0.0;
        for s in 0..4 {
            let times: f64 = (0..4).map(|h| r.transfer_ns(s * 4 + h, 1 << 20)).sum();
            total += (4.0 * (1u64 << 20) as f64) / times;
        }
        let local_total = 4.0 * 26.7;
        assert!(
            total < 0.5 * local_total,
            "interleaving must fall well short of local aggregate: {total} vs {local_total}"
        );
    }

    #[test]
    fn rates_are_never_zero_or_negative() {
        let t = sgi_machine();
        let mut flows = Vec::new();
        for i in 0..64u16 {
            flows.push(Flow::new(n(i), n((i + 17) % 64), 4096));
        }
        let r = FlowSolver::new(&t).solve(&flows);
        for rate in &r.rates {
            assert!(*rate > 0.0);
        }
    }

    #[test]
    fn two_hop_flow_consumes_both_links() {
        // Line-ish custom machine is fully connected; use AMD for 2 hops.
        let t = crate::machines::amd_machine();
        // Find a 2-hop pair.
        let mut pair = None;
        for a in t.nodes() {
            for b in t.nodes() {
                if a != b && t.hops(a, b) == 2 {
                    pair = Some((a, b));
                }
            }
        }
        let (a, b) = pair.expect("AMD machine has 2-hop routes");
        let r = FlowSolver::new(&t).solve(&[Flow::new(a, b, 1 << 20)]);
        let route = t.route(a, b).unwrap();
        assert!((r.rates[0] - route.bandwidth_gbps).abs() < 1e-9);
    }

    #[test]
    fn empty_flow_set() {
        let t = custom_machine("t", 2, 1, 10.0, 100.0, 5.0, 50.0);
        assert!(FlowSolver::new(&t).solve(&[]).rates.is_empty());
    }

    #[test]
    fn transfer_time_uses_gbps_as_bytes_per_ns() {
        let t = intel_machine();
        let r = FlowSolver::new(&t).solve(&[Flow::new(n(0), n(0), 267)]);
        // 267 bytes at 26.7 GB/s = 10 ns.
        assert!((r.transfer_ns(0, 267) - 10.0).abs() < 1e-9);
    }
}

#[cfg(test)]
mod properties {
    use super::*;
    use crate::machines::{amd_machine, custom_machine, intel_machine, sgi_machine};
    use proptest::prelude::*;

    fn arbitrary_flows(nodes: u16) -> impl Strategy<Value = Vec<Flow>> {
        proptest::collection::vec(
            (0..nodes, 0..nodes, 1u64..1_000_000)
                .prop_map(|(s, h, b)| Flow::new(NodeId(s), NodeId(h), b)),
            1..40,
        )
    }

    /// Check the three fairness invariants on a solved flow set:
    /// rates positive, per-flow route caps respected, and no resource
    /// (IMC or link direction) oversubscribed.
    fn check_invariants(topo: &Topology, flows: &[Flow]) {
        let rates = FlowSolver::new(topo).solve(flows);
        assert_eq!(rates.rates.len(), flows.len());
        let mut imc_load = vec![0f64; topo.num_nodes()];
        let mut link_load = vec![[0f64; 2]; topo.links().len()];
        for (f, &r) in flows.iter().zip(&rates.rates) {
            assert!(r > 0.0, "positive rate");
            let cap = if f.src == f.home {
                topo.node_spec(f.home).local_bandwidth_gbps
            } else {
                topo.route(f.src, f.home).unwrap().bandwidth_gbps
            };
            assert!(r <= cap + 1e-9, "route cap: {r} <= {cap}");
            imc_load[f.home.index()] += r;
            if f.src != f.home {
                let route = topo.route(f.src, f.home).unwrap();
                let mut cur = f.src;
                for lid in &route.links {
                    let l = &topo.links()[lid.index()];
                    let reversed = l.b == cur;
                    link_load[lid.index()][reversed as usize] += r;
                    cur = if reversed { l.a } else { l.b };
                }
            }
        }
        for n in topo.nodes() {
            assert!(
                imc_load[n.index()] <= topo.node_spec(n).local_bandwidth_gbps + 1e-6,
                "IMC {n} oversubscribed: {}",
                imc_load[n.index()]
            );
        }
        for (i, l) in topo.links().iter().enumerate() {
            for (d, load) in link_load[i].iter().enumerate() {
                assert!(
                    *load <= l.bandwidth_gbps + 1e-6,
                    "link {i} dir {d} oversubscribed"
                );
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn intel_fairness_invariants(flows in arbitrary_flows(4)) {
            check_invariants(&intel_machine(), &flows);
        }

        #[test]
        fn amd_fairness_invariants(flows in arbitrary_flows(8)) {
            check_invariants(&amd_machine(), &flows);
        }

        #[test]
        fn sgi_fairness_invariants(flows in arbitrary_flows(64)) {
            check_invariants(&sgi_machine(), &flows);
        }

        #[test]
        fn adding_a_flow_never_raises_other_rates_above_solo(
            flows in arbitrary_flows(4), extra in (0u16..4, 0u16..4, 1u64..1000))
        {
            // Sanity: any flow's rate under contention never exceeds its
            // rate when running alone.
            let topo = custom_machine("p", 4, 2, 20.0, 100.0, 10.0, 60.0);
            let solver = FlowSolver::new(&topo);
            let with_extra = {
                let mut v = flows.clone();
                v.push(Flow::new(NodeId(extra.0), NodeId(extra.1), extra.2));
                v
            };
            let contended = solver.solve(&with_extra);
            for (i, f) in flows.iter().enumerate() {
                let solo = solver.solve(std::slice::from_ref(f)).rates[0];
                prop_assert!(contended.rates[i] <= solo + 1e-9);
            }
        }
    }
}
