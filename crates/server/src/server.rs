//! The serving core: multiplexes framed connections into the engine's
//! per-AEU routing buffers with boundary batching.
//!
//! One [`EngineServer`] owns the [`Engine`] and a set of connections
//! behind [`Transport`]s.  Each [`pump`](EngineServer::pump) is one
//! batch cycle aligned to an AEU step boundary:
//!
//! 1. **Read + admit** — drain available bytes from every connection,
//!    parse frames, and settle each command: credit window first (an
//!    empty window *stops reading* that connection — backpressure by
//!    withholding grants, never unbounded buffering), then the overload
//!    watermark, then the tenant's token bucket, then `DataCommand`
//!    decode and [`Engine::submit`].
//! 2. **Boundary** — `run_epoch()`: every AEU steps once, executing the
//!    batch that was just routed.
//! 3. **Settle + flush** — credits consumed by settled commands are
//!    regranted, responses are encoded and written back.
//!
//! Every received command produces exactly one typed response —
//! `Accepted`, `Shed`, `QuotaDenied`, or `Rejected` — so the server can
//! prove "zero silent drops" from its own ledger, and `accepted ==
//! engine-routed` composes with the engine's per-object
//! enqueued-equals-executed conservation law into end-to-end
//! accepted-equals-executed.

use crate::admission::{Admission, AdmissionConfig, Admit, CreditWindow, LoadSignal, TenantCounts};
use crate::frame::{
    ReqKind, RequestFrame, RespKind, ResponseFrame, REJ_DECODE, REJ_PROTOCOL, REJ_ROUTING,
    REJ_TENANT, SHED_OVERLOAD,
};
use crate::transport::Transport;
use eris_core::{DataCommand, Engine, QuiesceReport};
use eris_obs::latency::LogHistogram;
use eris_obs::{
    render_jsonl, render_prometheus, HistogramFamily, Metric, MetricKind, Phase, SloConfig,
    SloEngine, SloTotals, TraceStamp,
};
use std::sync::atomic::Ordering::Relaxed;

/// Where the admission clock comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClockSource {
    /// The engine's virtual clock — deterministic; token-bucket refill
    /// advances exactly with simulated epochs (tier-1 tests, bench).
    Virtual,
    /// The process-wide monotonic host clock (TCP serving).
    Host,
}

/// Serving-layer configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Number of tenants; frames naming a tenant outside `0..tenants`
    /// are rejected.
    pub tenants: u32,
    pub admission: AdmissionConfig,
    pub clock: ClockSource,
    /// Trace one in N commands end to end (0 disables serving-side
    /// tracing).  A sampled command carries a [`TraceStamp`] born at
    /// frame decode — identity `(tenant, conn, seq)` plus the
    /// network-queue and admission spans — to the executing AEU.  A
    /// sampled command dropped at admission (shed, quota-denied,
    /// rejected) is charged to the engine's trace ledger so
    /// `stamped == traced + dropped` holds under overload.
    pub trace_sample_every: u32,
    /// Per-tenant SLO objectives and burn-rate windows.
    pub slo: SloConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            tenants: 1,
            admission: AdmissionConfig::default(),
            clock: ClockSource::Virtual,
            trace_sample_every: 64,
            slo: SloConfig::default(),
        }
    }
}

/// A response settled in phase 1, flushed in phase 3 (after the epoch
/// boundary, so credit regrants really are "after the batch executed").
struct PendingResponse {
    kind: RespKind,
    code: u8,
    seq: u64,
    retry_after_ms: u32,
    /// Credits to return to the window when this response flushes.
    regrant: u32,
}

struct Conn {
    id: u32,
    tenant: Option<u32>,
    transport: Box<dyn Transport>,
    credits: CreditWindow,
    /// Reassembly buffer of not-yet-parsed request bytes.
    inbuf: Vec<u8>,
    /// Encoded responses not yet accepted by the transport.
    outbuf: Vec<u8>,
    pending: Vec<PendingResponse>,
    /// Arrival stamp of the oldest unparsed byte (network-queue wait).
    inbuf_since_ns: Option<u64>,
    /// The AEU this connection submits through (round-robin pinned).
    via: eris_core::AeuId,
    closing: bool,
}

/// Whole-server counters (single-writer: the serving loop).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerCounters {
    pub frames_received: u64,
    pub commands_received: u64,
    pub responses_sent: u64,
    pub bytes_read: u64,
    pub bytes_written: u64,
    pub protocol_errors: u64,
    pub connections_opened: u64,
    pub connections_closed: u64,
    /// Commands admitted whose execution was later abandoned.  The
    /// design makes this impossible (admission settles before the
    /// boundary; the engine's conservation law covers everything after
    /// routing), so this stays 0 — exported so the claim is auditable.
    pub shed_after_accept: u64,
}

/// What one pump cycle did.
#[derive(Debug, Clone, Copy, Default)]
pub struct PumpReport {
    pub frames: u64,
    pub commands: u64,
    pub accepted: u64,
    pub shed: u64,
    pub quota_denied: u64,
    pub rejected: u64,
    /// Connections that had parsable frames waiting but an exhausted
    /// credit window (reading was withheld).
    pub stalled_conns: u64,
    pub epoch_duration_ns: f64,
}

/// Point-in-time view of the serving layer's telemetry.
#[derive(Debug, Clone)]
pub struct ServerSnapshot {
    pub tenants: Vec<TenantCounts>,
    pub counters: ServerCounters,
    /// Network-queue wait histograms (frame arrival to engine submit),
    /// one per tenant.
    pub net_wait: Vec<LogHistogram>,
    pub open_connections: u64,
    /// Per-tenant SLO burn-rate gauges, rendered at snapshot time
    /// (`eris_slo_burn_rate{tenant,objective,window}` and friends).
    pub slo_metrics: Vec<Metric>,
}

/// The serving layer's own conservation ledger, combined with the
/// engine's: proves `accepted == executed` and `shed-after-accept == 0`.
#[derive(Debug, Clone, Copy)]
pub struct ServingLedger {
    /// Commands admitted and routed by the server.
    pub accepted: u64,
    /// Commands the engine's routing layer counted (`commands_routed`).
    pub engine_routed: u64,
    /// Per-object enqueued == executed across every data object.
    pub engine_conservation_ok: bool,
    pub shed_after_accept: u64,
    /// Every received command was answered: `commands_received ==
    /// accepted + shed + quota_denied + rejected`.
    pub all_commands_settled: bool,
}

impl ServingLedger {
    /// The end-to-end conservation claim of the serving layer.
    pub fn holds(&self) -> bool {
        self.accepted == self.engine_routed
            && self.engine_conservation_ok
            && self.shed_after_accept == 0
            && self.all_commands_settled
    }
}

impl ServerSnapshot {
    pub fn accepted_total(&self) -> u64 {
        self.tenants.iter().map(|t| t.accepted).sum()
    }

    pub fn shed_total(&self) -> u64 {
        self.tenants.iter().map(|t| t.shed).sum()
    }

    pub fn quota_denied_total(&self) -> u64 {
        self.tenants.iter().map(|t| t.quota_denied).sum()
    }

    pub fn rejected_total(&self) -> u64 {
        self.tenants.iter().map(|t| t.rejected).sum()
    }

    pub fn credits_stalled_total(&self) -> u64 {
        self.tenants.iter().map(|t| t.credits_stalled).sum()
    }

    /// The serving layer's metric families (per-tenant admission
    /// counters, whole-server counters, network-queue wait histograms),
    /// ready for the Prometheus/JSONL renderers.
    pub fn to_metrics(&self) -> Vec<Metric> {
        let mut accepted = Metric::new(
            "eris_server_accepted_total",
            "Commands admitted and routed into the engine, per tenant.",
            MetricKind::Counter,
        );
        let mut shed = Metric::new(
            "eris_server_shed_total",
            "Commands shed by the overload watermark, per tenant.",
            MetricKind::Counter,
        );
        let mut quota = Metric::new(
            "eris_server_quota_denied_total",
            "Commands denied by the tenant token bucket, per tenant.",
            MetricKind::Counter,
        );
        let mut stalled = Metric::new(
            "eris_server_credits_stalled_total",
            "Pump cycles a connection was stalled on an empty credit window, per tenant.",
            MetricKind::Counter,
        );
        let mut rejected = Metric::new(
            "eris_server_rejected_total",
            "Commands answered with a typed reject, per tenant.",
            MetricKind::Counter,
        );
        for t in &self.tenants {
            let id = t.tenant.to_string();
            let l: &[(&str, &str)] = &[("tenant", &id)];
            accepted = accepted.sample(l, t.accepted as f64);
            shed = shed.sample(l, t.shed as f64);
            quota = quota.sample(l, t.quota_denied as f64);
            stalled = stalled.sample(l, t.credits_stalled as f64);
            rejected = rejected.sample(l, t.rejected as f64);
        }
        let c = &self.counters;
        let mut metrics = vec![
            accepted,
            shed,
            quota,
            stalled,
            rejected,
            Metric::new(
                "eris_server_frames_received_total",
                "Request frames parsed off connections.",
                MetricKind::Counter,
            )
            .sample(&[], c.frames_received as f64),
            Metric::new(
                "eris_server_responses_sent_total",
                "Response frames flushed to connections.",
                MetricKind::Counter,
            )
            .sample(&[], c.responses_sent as f64),
            Metric::new(
                "eris_server_bytes_read_total",
                "Bytes read from transports.",
                MetricKind::Counter,
            )
            .sample(&[], c.bytes_read as f64),
            Metric::new(
                "eris_server_bytes_written_total",
                "Bytes written to transports.",
                MetricKind::Counter,
            )
            .sample(&[], c.bytes_written as f64),
            Metric::new(
                "eris_server_protocol_errors_total",
                "Connections rejected for frame-protocol violations.",
                MetricKind::Counter,
            )
            .sample(&[], c.protocol_errors as f64),
            Metric::new(
                "eris_server_shed_after_accept_total",
                "Admitted commands later abandoned (must stay 0).",
                MetricKind::Counter,
            )
            .sample(&[], c.shed_after_accept as f64),
            Metric::new(
                "eris_server_open_connections",
                "Currently attached connections.",
                MetricKind::Gauge,
            )
            .sample(&[], self.open_connections as f64),
        ];
        let mut wait = HistogramFamily::new(
            "eris_server_net_queue_wait_ns",
            "Network-queue wait from frame arrival to engine submit",
        );
        for (t, h) in self.net_wait.iter().enumerate() {
            let id = t.to_string();
            wait.observe(&[("tenant", &id)], h);
        }
        metrics.extend(wait.into_metrics());
        metrics.extend(self.slo_metrics.iter().cloned());
        metrics
    }

    pub fn to_prometheus(&self) -> String {
        render_prometheus(&self.to_metrics())
    }

    pub fn to_jsonl(&self, at_ns: u64) -> String {
        render_jsonl(&self.to_metrics(), at_ns)
    }
}

/// Outcome of a graceful [`EngineServer::shutdown`].
pub struct ShutdownOutcome {
    pub quiesce: QuiesceReport,
    pub snapshot: ServerSnapshot,
    pub ledger: ServingLedger,
    /// The engine, handed back for post-mortem inspection.
    pub engine: Engine,
}

/// The serving layer around one engine.
pub struct EngineServer {
    engine: Engine,
    cfg: ServerConfig,
    admission: Admission,
    conns: Vec<Option<Conn>>,
    counters: ServerCounters,
    net_wait: Vec<LogHistogram>,
    slo: SloEngine,
    /// Commands seen by the 1-in-N trace sampler.
    trace_seq: u64,
}

impl EngineServer {
    pub fn new(engine: Engine, cfg: ServerConfig) -> Self {
        let admission = Admission::new(cfg.admission.clone(), cfg.tenants);
        let net_wait = (0..cfg.tenants).map(|_| LogHistogram::default()).collect();
        let slo = SloEngine::new(cfg.slo.clone());
        EngineServer {
            engine,
            cfg,
            admission,
            conns: Vec::new(),
            counters: ServerCounters::default(),
            net_wait,
            slo,
            trace_seq: 0,
        }
    }

    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    pub fn engine_mut(&mut self) -> &mut Engine {
        &mut self.engine
    }

    pub fn admission(&self) -> &Admission {
        &self.admission
    }

    pub fn config(&self) -> &ServerConfig {
        &self.cfg
    }

    /// The per-tenant SLO burn-rate tracker (fed once per pump).
    pub fn slo(&self) -> &SloEngine {
        &self.slo
    }

    /// The admission clock, in nanoseconds.
    pub fn now_ns(&self) -> u64 {
        match self.cfg.clock {
            ClockSource::Virtual => self.engine.clock().now_ns() as u64,
            ClockSource::Host => eris_obs::now_ns(),
        }
    }

    /// Attach a connection; returns its id.  The connection stays
    /// un-helloed (commands rejected) until a `Hello` frame names its
    /// tenant.
    pub fn attach(&mut self, transport: Box<dyn Transport>) -> u32 {
        let id = self.conns.len() as u32;
        let via = eris_core::AeuId(id % self.engine.num_aeus() as u32);
        self.conns.push(Some(Conn {
            id,
            tenant: None,
            transport,
            credits: CreditWindow::new(self.cfg.admission.credit_limit),
            inbuf: Vec::new(),
            outbuf: Vec::new(),
            pending: Vec::new(),
            inbuf_since_ns: None,
            via,
            closing: false,
        }));
        self.counters.connections_opened += 1;
        id
    }

    pub fn open_connections(&self) -> u64 {
        self.conns.iter().flatten().count() as u64
    }

    /// One batch cycle: read + admit, epoch boundary, settle + flush.
    pub fn pump(&mut self) -> PumpReport {
        let mut report = PumpReport::default();
        let now = self.now_ns();
        let (pending_bytes, capacity) = self.engine.incoming_occupancy();
        let load = LoadSignal {
            occupancy: pending_bytes as f64 / capacity.max(1) as f64,
            in_flight: self.engine.in_flight_commands(),
        };

        // Phase 1: read and admit, bounded by each connection's window.
        // Wall time is charged as `read_admit` to the profiler of the
        // AEU each connection submits through.
        for slot in 0..self.conns.len() {
            let Some(mut conn) = self.conns[slot].take() else {
                continue;
            };
            let t0 = eris_obs::now_ns();
            self.read_and_admit(&mut conn, now, load, &mut report);
            let dt = eris_obs::now_ns().saturating_sub(t0);
            self.engine
                .telemetry_shard(conn.via)
                .profiler
                .add(Phase::ReadAdmit, dt);
            self.conns[slot] = Some(conn);
        }

        // Phase 2: the AEU step boundary executes the admitted batch.
        let epoch = self.engine.run_epoch();
        report.epoch_duration_ns = epoch.duration_ns;

        // Phase 3: settle responses (regrants happen here, after the
        // boundary) and flush transports.  Charged as `flush`.
        for slot in 0..self.conns.len() {
            let Some(mut conn) = self.conns[slot].take() else {
                continue;
            };
            let t0 = eris_obs::now_ns();
            self.settle_and_flush(&mut conn);
            let dt = eris_obs::now_ns().saturating_sub(t0);
            self.engine
                .telemetry_shard(conn.via)
                .profiler
                .add(Phase::Flush, dt);
            let dead = !conn.transport.is_open() && conn.inbuf.is_empty();
            if (conn.closing && conn.outbuf.is_empty()) || dead {
                conn.transport.close();
                self.counters.connections_closed += 1;
            } else {
                self.conns[slot] = Some(conn);
            }
        }
        self.observe_slo();
        report
    }

    /// Feed the burn-rate tracker one observation tick per tenant.
    /// Admission verdicts give the request and error totals; the
    /// engine's per-tenant full-path histograms give the bad-latency
    /// count, scaled by the sampling rate (only 1-in-N commands are
    /// traced) and clamped so the estimated bad fraction stays ≤ 1.
    fn observe_slo(&mut self) {
        let now = self.now_ns();
        let threshold = self.slo.config().latency_threshold_ns;
        let scale = self.cfg.trace_sample_every.max(1) as u64;
        let tenant_full = self.engine.latency().tenant_snapshot();
        for t in self.admission.counts() {
            let errors = t.shed + t.quota_denied + t.rejected;
            let requests = t.accepted + errors;
            if requests == 0 {
                continue;
            }
            let bad_latency = tenant_full
                .iter()
                .find(|(id, _)| *id == t.tenant)
                .map(|(_, h)| (h.count_over(threshold) * scale).min(requests))
                .unwrap_or(0);
            self.slo.observe(
                t.tenant,
                now,
                SloTotals {
                    requests,
                    bad_latency,
                    errors,
                },
            );
        }
    }

    /// 1-in-N serving-side trace sampling decision.
    fn trace_sampled(&mut self) -> bool {
        let every = self.cfg.trace_sample_every as u64;
        if every == 0 {
            return false;
        }
        let hit = self.trace_seq.is_multiple_of(every);
        self.trace_seq += 1;
        hit
    }

    /// A sampled command dropped before routing (shed, quota-denied, or
    /// rejected): charge the engine's trace ledger so
    /// `stamped == traced + dropped` stays balanced under overload.
    fn trace_drop(&self) {
        let lat = self.engine.latency();
        lat.on_stamped();
        lat.on_dropped(1);
    }

    fn read_and_admit(
        &mut self,
        conn: &mut Conn,
        now: u64,
        load: LoadSignal,
        report: &mut PumpReport,
    ) {
        let was_empty = conn.inbuf.is_empty();
        match conn.transport.try_read(&mut conn.inbuf) {
            Ok(n) => {
                self.counters.bytes_read += n as u64;
                if was_empty && n > 0 {
                    conn.inbuf_since_ns = Some(now);
                }
            }
            Err(_) => {
                conn.closing = true;
            }
        }
        loop {
            if conn.closing {
                break;
            }
            let mut cur = conn.inbuf.as_slice();
            let before = cur.len();
            match RequestFrame::try_decode(&mut cur) {
                Ok(None) => break,
                Err(err) => {
                    self.counters.protocol_errors += 1;
                    conn.pending.push(PendingResponse {
                        kind: RespKind::Rejected,
                        code: REJ_PROTOCOL,
                        seq: 0,
                        retry_after_ms: 0,
                        regrant: 0,
                    });
                    if let Some(s) = conn.tenant.and_then(|t| self.admission.shard(t)) {
                        s.rejected.fetch_add(1, Relaxed);
                        report.rejected += 1;
                    }
                    let _ = err;
                    conn.inbuf.clear();
                    conn.closing = true;
                    break;
                }
                Ok(Some(frame)) => {
                    if frame.kind == ReqKind::Command && !conn.credits.try_consume() {
                        // Window empty: withhold — leave the frame in
                        // the buffer and stop reading this connection.
                        if let Some(s) = conn.tenant.and_then(|t| self.admission.shard(t)) {
                            s.credits_stalled.fetch_add(1, Relaxed);
                        }
                        report.stalled_conns += 1;
                        break;
                    }
                    let consumed = before - cur.len();
                    conn.inbuf.drain(..consumed);
                    self.counters.frames_received += 1;
                    report.frames += 1;
                    self.handle_frame(conn, frame, now, load, report);
                }
            }
        }
        if conn.inbuf.is_empty() {
            conn.inbuf_since_ns = None;
        } else if conn.inbuf_since_ns.is_none() {
            conn.inbuf_since_ns = Some(now);
        }
    }

    fn handle_frame(
        &mut self,
        conn: &mut Conn,
        frame: RequestFrame,
        now: u64,
        load: LoadSignal,
        report: &mut PumpReport,
    ) {
        match frame.kind {
            ReqKind::Hello => {
                if frame.tenant >= self.cfg.tenants {
                    self.counters.protocol_errors += 1;
                    conn.pending.push(PendingResponse {
                        kind: RespKind::Rejected,
                        code: REJ_PROTOCOL,
                        seq: frame.seq,
                        retry_after_ms: 0,
                        regrant: 0,
                    });
                    conn.closing = true;
                    return;
                }
                conn.tenant = Some(frame.tenant);
                conn.pending.push(PendingResponse {
                    kind: RespKind::Welcome,
                    code: 0,
                    seq: frame.seq,
                    retry_after_ms: 0,
                    regrant: 0,
                });
            }
            ReqKind::Bye => {
                conn.pending.push(PendingResponse {
                    kind: RespKind::Goodbye,
                    code: 0,
                    seq: frame.seq,
                    retry_after_ms: 0,
                    regrant: 0,
                });
                conn.closing = true;
            }
            ReqKind::Command => {
                self.counters.commands_received += 1;
                report.commands += 1;
                // The trace decision is made the moment the command frame
                // is seen, so every later verdict — including rejects —
                // accounts for the stamp.
                let sampled = self.trace_sampled();
                let reject = |conn: &mut Conn, code: u8, seq: u64| {
                    conn.pending.push(PendingResponse {
                        kind: RespKind::Rejected,
                        code,
                        seq,
                        retry_after_ms: 0,
                        regrant: 1,
                    });
                };
                let Some(tenant) = conn.tenant else {
                    // Commands before Hello are a protocol violation.
                    self.counters.protocol_errors += 1;
                    if sampled {
                        self.trace_drop();
                    }
                    reject(conn, REJ_PROTOCOL, frame.seq);
                    return;
                };
                if frame.conn != conn.id {
                    self.counters.protocol_errors += 1;
                    if let Some(s) = self.admission.shard(tenant) {
                        s.rejected.fetch_add(1, Relaxed);
                    }
                    report.rejected += 1;
                    if sampled {
                        self.trace_drop();
                    }
                    reject(conn, REJ_PROTOCOL, frame.seq);
                    return;
                }
                let mut body = frame.payload.as_slice();
                let cmd = match DataCommand::try_decode(&mut body) {
                    Ok(cmd) if body.is_empty() => cmd,
                    _ => {
                        if let Some(s) = self.admission.shard(tenant) {
                            s.rejected.fetch_add(1, Relaxed);
                        }
                        report.rejected += 1;
                        if sampled {
                            self.trace_drop();
                        }
                        reject(conn, REJ_DECODE, frame.seq);
                        return;
                    }
                };
                // Span: network-queue wait, from the arrival of the
                // oldest unparsed byte to now (admission clock domain).
                let net_ns = now.saturating_sub(conn.inbuf_since_ns.unwrap_or(now));
                let ops = cmd.payload.op_count().max(1).min(u32::MAX as u64) as u32;
                // Span: the admission verdict itself, in host wall time
                // (the virtual clock does not advance inside a pump) —
                // clamped to ≥ 1 ns so a traced verdict is never
                // indistinguishable from "not measured".
                let admit_t0 = eris_obs::now_ns();
                let verdict = self.admission.admit(tenant, ops, now, load);
                let admit_ns = eris_obs::now_ns().saturating_sub(admit_t0).max(1);
                let stamp = if sampled {
                    Some(TraceStamp {
                        submit_ns: eris_obs::now_ns(),
                        hops: 0,
                        tenant,
                        conn: conn.id,
                        seq: frame.seq,
                        net_ns: net_ns.min(u32::MAX as u64) as u32,
                        admit_ns: admit_ns.min(u32::MAX as u64) as u32,
                    })
                } else {
                    None
                };
                match verdict {
                    Admit::Overloaded { retry_after_ms } => {
                        report.shed += 1;
                        if sampled {
                            self.trace_drop();
                        }
                        conn.pending.push(PendingResponse {
                            kind: RespKind::Shed,
                            code: SHED_OVERLOAD,
                            seq: frame.seq,
                            retry_after_ms,
                            regrant: 1,
                        });
                    }
                    Admit::QuotaDenied { retry_after_ms } => {
                        report.quota_denied += 1;
                        if sampled {
                            self.trace_drop();
                        }
                        conn.pending.push(PendingResponse {
                            kind: RespKind::QuotaDenied,
                            code: 0,
                            seq: frame.seq,
                            retry_after_ms,
                            regrant: 1,
                        });
                    }
                    Admit::UnknownTenant => {
                        // Unreachable through the normal handshake (Hello
                        // validated the id), but admission is total:
                        // answer like any other protocol violation.
                        self.counters.protocol_errors += 1;
                        report.rejected += 1;
                        if sampled {
                            self.trace_drop();
                        }
                        reject(conn, REJ_TENANT, frame.seq);
                    }
                    Admit::Granted => {
                        let submitted = match stamp {
                            Some(stamp) => self.engine.submit_traced(conn.via, cmd, stamp),
                            None => self.engine.submit(conn.via, cmd),
                        };
                        match submitted {
                            Ok(()) => {
                                report.accepted += 1;
                                let wait = now.saturating_sub(conn.inbuf_since_ns.unwrap_or(now));
                                self.net_wait[tenant as usize].record(wait);
                                conn.pending.push(PendingResponse {
                                    kind: RespKind::Accepted,
                                    code: 0,
                                    seq: frame.seq,
                                    retry_after_ms: 0,
                                    regrant: 1,
                                });
                            }
                            Err(_) => {
                                // Admitted but unroutable: settle as a typed
                                // reject and undo the `accepted` bump so the
                                // ledger stays `accepted == routed`.  Routing
                                // errors charge nothing to the trace ledger
                                // themselves, so the dropped stamp is
                                // accounted here.
                                self.admission.unaccept(tenant);
                                report.rejected += 1;
                                if sampled {
                                    self.trace_drop();
                                }
                                reject(conn, REJ_ROUTING, frame.seq);
                            }
                        }
                    }
                }
            }
        }
    }

    fn settle_and_flush(&mut self, conn: &mut Conn) {
        for p in conn.pending.drain(..) {
            let credits = match p.kind {
                RespKind::Welcome => conn.credits.limit(),
                _ if p.regrant > 0 => conn.credits.regrant(p.regrant),
                _ => 0,
            };
            ResponseFrame {
                kind: p.kind,
                code: p.code,
                conn: conn.id,
                seq: p.seq,
                credits,
                retry_after_ms: p.retry_after_ms,
            }
            .encode(&mut conn.outbuf);
            self.counters.responses_sent += 1;
        }
        if !conn.outbuf.is_empty() {
            match conn.transport.try_write(&conn.outbuf) {
                Ok(n) => {
                    conn.outbuf.drain(..n);
                    self.counters.bytes_written += n as u64;
                }
                Err(_) => conn.closing = true,
            }
        }
    }

    /// Pump until a full cycle moves no frames and the engine reports
    /// nothing in flight (or `max_pumps` elapses).  Returns the number
    /// of pumps run.
    pub fn pump_until_quiet(&mut self, max_pumps: usize) -> usize {
        for i in 0..max_pumps {
            let r = self.pump();
            if r.frames == 0 && self.engine.in_flight_commands() == 0 {
                return i + 1;
            }
        }
        max_pumps
    }

    pub fn snapshot(&self) -> ServerSnapshot {
        ServerSnapshot {
            tenants: self.admission.counts(),
            counters: self.counters,
            net_wait: self.net_wait.clone(),
            open_connections: self.open_connections(),
            slo_metrics: self.slo.to_metrics(self.now_ns()),
        }
    }

    /// The combined serving + engine conservation ledger.
    pub fn ledger(&self) -> ServingLedger {
        let snap = self.snapshot();
        let engine_tel = self.engine.telemetry();
        let settled = snap.accepted_total()
            + snap.shed_total()
            + snap.quota_denied_total()
            + snap.rejected_total();
        ServingLedger {
            accepted: snap.accepted_total(),
            engine_routed: engine_tel.totals.commands_routed,
            engine_conservation_ok: engine_tel.conservation_holds(),
            shed_after_accept: self.counters.shed_after_accept,
            all_commands_settled: settled == self.counters.commands_received,
        }
    }

    /// Graceful stop: answer every connection with `Goodbye`, flush,
    /// then [`Engine::drain_and_quiesce`] — commands already admitted
    /// execute to completion; nothing new is read.  The returned ledger
    /// is the mid-traffic-shutdown conservation proof.
    pub fn shutdown(mut self) -> ShutdownOutcome {
        for slot in 0..self.conns.len() {
            let Some(mut conn) = self.conns[slot].take() else {
                continue;
            };
            conn.pending.push(PendingResponse {
                kind: RespKind::Goodbye,
                code: 0,
                seq: 0,
                retry_after_ms: 0,
                regrant: 0,
            });
            self.settle_and_flush(&mut conn);
            conn.transport.close();
            self.counters.connections_closed += 1;
        }
        let quiesce = self.engine.drain_and_quiesce();
        let ledger = self.ledger();
        let snapshot = self.snapshot();
        ShutdownOutcome {
            quiesce,
            snapshot,
            ledger,
            engine: self.engine,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::loopback_pair;
    use eris_core::prelude::*;
    use eris_numa::machines::custom_machine;

    fn small_engine() -> (Engine, DataObjectId) {
        let cfg = EngineConfig {
            balancer: BalancerConfig {
                enabled: false,
                ..Default::default()
            },
            ..Default::default()
        };
        let mut engine = Engine::new(custom_machine("t", 1, 4, 20.0, 100.0, 10.0, 60.0), cfg);
        let obj = engine.create_index("kv", 1 << 16);
        engine.bulk_load_index(obj, (0..1000u64).map(|k| (k * 64, k)));
        (engine, obj)
    }

    #[test]
    fn hello_then_command_is_accepted() {
        let (engine, obj) = small_engine();
        let mut server = EngineServer::new(engine, ServerConfig::default());
        let (server_side, mut client_side) = loopback_pair();
        let id = server.attach(Box::new(server_side));

        let mut bytes = Vec::new();
        RequestFrame {
            kind: ReqKind::Hello,
            tenant: 0,
            conn: 0,
            seq: 0,
            payload: vec![],
        }
        .encode(&mut bytes);
        client_side.try_write(&bytes).unwrap();
        server.pump();

        let mut resp = Vec::new();
        client_side.try_read(&mut resp).unwrap();
        let welcome = ResponseFrame::try_decode(&mut resp.as_slice())
            .unwrap()
            .unwrap();
        assert_eq!(welcome.kind, RespKind::Welcome);
        assert_eq!(welcome.conn, id);
        assert_eq!(welcome.credits, server.config().admission.credit_limit);

        let cmd = DataCommand {
            object: obj,
            ticket: 1,
            payload: Payload::Lookup { keys: vec![64] },
        };
        let mut bytes = Vec::new();
        RequestFrame::command(0, id, 1, &cmd).encode(&mut bytes);
        client_side.try_write(&bytes).unwrap();
        server.pump();

        let mut resp = Vec::new();
        client_side.try_read(&mut resp).unwrap();
        let acc = ResponseFrame::try_decode(&mut resp.as_slice())
            .unwrap()
            .unwrap();
        assert_eq!(acc.kind, RespKind::Accepted);
        assert_eq!(acc.seq, 1);
        assert_eq!(acc.credits, 1);
        // Conservation is a drained-state claim: in-flight sub-commands
        // sit in the double buffers until later epochs execute them.
        server.pump_until_quiet(16);
        let l = server.ledger();
        assert!(l.holds(), "{l:?}");
    }

    #[test]
    fn sampled_command_resolves_to_a_full_path_trace() {
        let (engine, obj) = small_engine();
        let cfg = ServerConfig {
            trace_sample_every: 1, // trace everything
            ..Default::default()
        };
        let mut server = EngineServer::new(engine, cfg);
        let (server_side, mut client_side) = loopback_pair();
        let id = server.attach(Box::new(server_side));

        let mut bytes = Vec::new();
        RequestFrame {
            kind: ReqKind::Hello,
            tenant: 0,
            conn: 0,
            seq: 0,
            payload: vec![],
        }
        .encode(&mut bytes);
        for seq in 1..=8u64 {
            let cmd = DataCommand {
                object: obj,
                ticket: seq,
                payload: Payload::Lookup {
                    keys: vec![(seq % 1000) * 64],
                },
            };
            RequestFrame::command(0, id, seq, &cmd).encode(&mut bytes);
        }
        client_side.try_write(&bytes).unwrap();
        server.pump_until_quiet(32);

        let tel = server.engine().telemetry();
        assert_eq!(
            tel.trace.stamped,
            tel.trace.traced + tel.trace.dropped,
            "trace ledger balanced: {:?}",
            tel.trace
        );
        assert!(
            tel.trace.traced >= 1,
            "at least one command executed traced"
        );
        assert!(
            tel.tenant_latency
                .iter()
                .any(|(t, h)| *t == 0 && h.count > 0),
            "tenant 0 has a full-path latency histogram"
        );
        let ex = tel
            .exemplars
            .iter()
            .flatten()
            .find(|e| e.tenant == 0)
            .expect("a bucket exemplar for tenant 0");
        assert!(ex.admit_ns > 0, "admission span measured: {ex:?}");
        assert!(ex.trace_id != 0, "exemplar carries a trace id");
        assert!(
            ex.total_ns >= ex.net_ns + ex.admit_ns,
            "span breakdown is consistent: {ex:?}"
        );
    }

    #[test]
    fn garbage_bytes_get_a_typed_reject_and_a_close() {
        let (engine, _) = small_engine();
        let mut server = EngineServer::new(engine, ServerConfig::default());
        let (server_side, mut client_side) = loopback_pair();
        server.attach(Box::new(server_side));
        client_side.try_write(&[0xde, 0xad, 0xbe, 0xef]).unwrap();
        server.pump();
        let mut resp = Vec::new();
        client_side.try_read(&mut resp).unwrap();
        let r = ResponseFrame::try_decode(&mut resp.as_slice())
            .unwrap()
            .unwrap();
        assert_eq!(r.kind, RespKind::Rejected);
        assert_eq!(r.code, REJ_PROTOCOL);
        assert_eq!(server.snapshot().counters.protocol_errors, 1);
        assert_eq!(server.open_connections(), 0, "connection reaped");
    }

    #[test]
    fn command_before_hello_is_rejected_not_dropped() {
        let (engine, obj) = small_engine();
        let mut server = EngineServer::new(engine, ServerConfig::default());
        let (server_side, mut client_side) = loopback_pair();
        let id = server.attach(Box::new(server_side));
        let cmd = DataCommand {
            object: obj,
            ticket: 1,
            payload: Payload::Lookup { keys: vec![0] },
        };
        let mut bytes = Vec::new();
        RequestFrame::command(0, id, 9, &cmd).encode(&mut bytes);
        client_side.try_write(&bytes).unwrap();
        server.pump();
        let mut resp = Vec::new();
        client_side.try_read(&mut resp).unwrap();
        let r = ResponseFrame::try_decode(&mut resp.as_slice())
            .unwrap()
            .unwrap();
        assert_eq!(
            (r.kind, r.code, r.seq),
            (RespKind::Rejected, REJ_PROTOCOL, 9)
        );
        // The credit consumed by the read was returned with the reject.
        assert_eq!(r.credits, 1);
    }
}
