//! # eris-server — the network serving layer of the ERIS engine
//!
//! ERIS itself is an in-memory storage engine: AEUs own partitions,
//! commands are routed latch-free to their owners, and an epoch boundary
//! executes one batch everywhere.  This crate puts a *front end* on
//! that: framed client connections multiplexed into the engine's
//! per-AEU routing buffers, with admission control as a first-class
//! subsystem rather than an afterthought.
//!
//! * [`frame`] — the length-prefixed binary protocol.  The only command
//!   wire format is the stable `DataCommand` encoding from
//!   `eris_core::command`; frames add connection/tenant/credit headers
//!   around it, hardened against hostile bytes.
//! * [`admission`] — credit windows (bounded outstanding commands per
//!   connection; backpressure by withholding grants), per-tenant token
//!   buckets, and the overload-shed decision.  Latch-free; linted as a
//!   hot path.
//! * [`transport`] — non-blocking byte transports behind one trait:
//!   deterministic in-process loopback pipes and TCP.
//! * [`server`] — [`EngineServer`], the batch-aligned serving core:
//!   read + admit, epoch boundary, settle + flush.  Every received
//!   command gets exactly one typed response (`Accepted` / `Shed` /
//!   `QuotaDenied` / `Rejected`), and the [`ServingLedger`] composes
//!   with the engine's conservation law to prove accepted == executed
//!   and shed-after-accept == 0.
//! * [`client`] — a small client mirroring the credit window locally.
//! * [`tcp`] — the readiness-polling TCP listener loop.

#![deny(unsafe_code)]

pub mod admission;
pub mod client;
pub mod frame;
pub mod server;
pub mod tcp;
pub mod transport;

pub use admission::{
    Admission, AdmissionConfig, Admit, CreditWindow, LoadSignal, TenantCounts, TokenBucket,
};
pub use client::{Client, ClientStats};
pub use frame::{
    FrameError, ReqKind, RequestFrame, RespKind, ResponseFrame, MAX_PAYLOAD_BYTES, REJ_DECODE,
    REJ_PROTOCOL, REJ_ROUTING, SHED_CREDIT_VIOLATION, SHED_OVERLOAD,
};
pub use server::{
    ClockSource, EngineServer, PumpReport, ServerConfig, ServerCounters, ServerSnapshot,
    ServingLedger, ShutdownOutcome,
};
pub use tcp::TcpServer;
pub use transport::{loopback_pair, PipeTransport, TcpTransport, Transport};
