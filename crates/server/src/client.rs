//! A small client for the serving protocol.
//!
//! The client mirrors the server's credit window locally: `Welcome`
//! carries the initial grant, every settling response carries the
//! credits returned, and [`Client::try_send`] refuses to send (rather
//! than queueing unboundedly) when the mirror hits zero — the client
//! half of "backpressure by withholding grants".  Works over any
//! [`Transport`]: the in-process loopback pair for deterministic tests
//! and [`TcpTransport`](crate::transport::TcpTransport) for sockets.

use crate::frame::{ReqKind, RequestFrame, RespKind, ResponseFrame};
use crate::transport::Transport;
use eris_core::DataCommand;

/// What the client has seen settle, by response kind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientStats {
    pub sent: u64,
    pub accepted: u64,
    pub shed: u64,
    pub quota_denied: u64,
    pub rejected: u64,
    pub goodbyes: u64,
    /// `try_send` calls refused because the local credit mirror was 0.
    pub credit_stalls: u64,
    /// Responses that could not be parsed (should stay 0).
    pub protocol_errors: u64,
}

impl ClientStats {
    /// Every settled command: accepted + shed + quota-denied + rejected.
    pub fn settled(&self) -> u64 {
        self.accepted + self.shed + self.quota_denied + self.rejected
    }
}

/// One connection's client state machine.
pub struct Client<T: Transport> {
    transport: T,
    tenant: u32,
    /// Assigned by the server's `Welcome`; frames before that carry 0.
    conn: u32,
    next_seq: u64,
    /// Local mirror of the server-side credit window (0 until Welcome).
    credits: u32,
    welcomed: bool,
    goodbye: bool,
    inbuf: Vec<u8>,
    outbuf: Vec<u8>,
    stats: ClientStats,
    /// Retry hint from the most recent Shed/QuotaDenied, if any.
    last_retry_after_ms: Option<u32>,
}

impl<T: Transport> Client<T> {
    /// Open a session for `tenant`: queues the `Hello` immediately; the
    /// credit grant arrives with the `Welcome` on a later [`Client::poll`].
    pub fn connect(transport: T, tenant: u32) -> Self {
        let mut c = Client {
            transport,
            tenant,
            conn: 0,
            next_seq: 1,
            credits: 0,
            welcomed: false,
            goodbye: false,
            inbuf: Vec::new(),
            outbuf: Vec::new(),
            stats: ClientStats::default(),
            last_retry_after_ms: None,
        };
        RequestFrame {
            kind: ReqKind::Hello,
            tenant,
            conn: 0,
            seq: 0,
            payload: vec![],
        }
        .encode(&mut c.outbuf);
        c
    }

    pub fn stats(&self) -> ClientStats {
        self.stats
    }

    pub fn credits(&self) -> u32 {
        self.credits
    }

    pub fn is_welcomed(&self) -> bool {
        self.welcomed
    }

    /// True once the server said `Goodbye` or the transport died.
    pub fn is_done(&self) -> bool {
        self.goodbye || !self.transport.is_open()
    }

    pub fn conn_id(&self) -> u32 {
        self.conn
    }

    /// The server's most recent retry-after hint, cleared on read.
    pub fn take_retry_hint(&mut self) -> Option<u32> {
        self.last_retry_after_ms.take()
    }

    /// Outstanding commands: sent but not yet settled by a response.
    pub fn in_flight(&self) -> u64 {
        self.stats.sent - self.stats.settled()
    }

    /// Queue one command if a credit is available; `false` (and a stall
    /// count) otherwise.  Call [`Client::poll`] to actually move bytes.
    pub fn try_send(&mut self, cmd: &DataCommand) -> bool {
        if !self.welcomed || self.credits == 0 || self.goodbye {
            self.stats.credit_stalls += 1;
            return false;
        }
        self.credits -= 1;
        let seq = self.next_seq;
        self.next_seq += 1;
        RequestFrame::command(self.tenant, self.conn, seq, cmd).encode(&mut self.outbuf);
        self.stats.sent += 1;
        true
    }

    /// Queue an orderly close.
    pub fn send_bye(&mut self) {
        RequestFrame {
            kind: ReqKind::Bye,
            tenant: self.tenant,
            conn: self.conn,
            seq: self.next_seq,
            payload: vec![],
        }
        .encode(&mut self.outbuf);
        self.next_seq += 1;
    }

    /// Flush queued frames and consume any responses.  Returns how many
    /// responses settled in this call.
    pub fn poll(&mut self) -> usize {
        if !self.outbuf.is_empty() {
            if let Ok(n) = self.transport.try_write(&self.outbuf) {
                self.outbuf.drain(..n);
            }
        }
        let _ = self.transport.try_read(&mut self.inbuf);
        let mut settled = 0;
        loop {
            let mut cur = self.inbuf.as_slice();
            let before = cur.len();
            match ResponseFrame::try_decode(&mut cur) {
                Ok(None) => break,
                Err(_) => {
                    self.stats.protocol_errors += 1;
                    self.inbuf.clear();
                    self.transport.close();
                    break;
                }
                Ok(Some(resp)) => {
                    let consumed = before - cur.len();
                    self.inbuf.drain(..consumed);
                    settled += self.apply(resp);
                }
            }
        }
        settled
    }

    fn apply(&mut self, resp: ResponseFrame) -> usize {
        match resp.kind {
            RespKind::Welcome => {
                self.welcomed = true;
                self.conn = resp.conn;
                self.credits = resp.credits;
                0
            }
            RespKind::Goodbye => {
                self.goodbye = true;
                self.stats.goodbyes += 1;
                0
            }
            RespKind::Accepted => {
                self.stats.accepted += 1;
                self.credits = self.credits.saturating_add(resp.credits);
                1
            }
            RespKind::Shed => {
                self.stats.shed += 1;
                self.credits += resp.credits;
                self.last_retry_after_ms = Some(resp.retry_after_ms);
                1
            }
            RespKind::QuotaDenied => {
                self.stats.quota_denied += 1;
                self.credits += resp.credits;
                self.last_retry_after_ms = Some(resp.retry_after_ms);
                1
            }
            RespKind::Rejected => {
                self.stats.rejected += 1;
                self.credits += resp.credits;
                1
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::loopback_pair;
    use eris_core::{DataObjectId, Payload};

    fn cmd() -> DataCommand {
        DataCommand {
            object: DataObjectId(0),
            ticket: 7,
            payload: Payload::Lookup { keys: vec![1] },
        }
    }

    #[test]
    fn client_refuses_to_send_without_credits() {
        let (a, _b) = loopback_pair();
        let mut c = Client::connect(a, 0);
        // Not welcomed yet: no credits, sends are stalls not queues.
        assert!(!c.try_send(&cmd()));
        assert_eq!(c.stats().credit_stalls, 1);
        assert_eq!(c.stats().sent, 0);
    }

    #[test]
    fn client_mirrors_grants_and_settlements() {
        let (a, mut server_side) = loopback_pair();
        let mut c = Client::connect(a, 3);
        c.poll();
        // Fake the server: read the Hello, answer Welcome with 2 credits.
        let mut req = Vec::new();
        server_side.try_read(&mut req).unwrap();
        let hello = RequestFrame::try_decode(&mut req.as_slice())
            .unwrap()
            .unwrap();
        assert_eq!(hello.kind, ReqKind::Hello);
        assert_eq!(hello.tenant, 3);
        let mut resp = Vec::new();
        ResponseFrame {
            kind: RespKind::Welcome,
            code: 0,
            conn: 9,
            seq: 0,
            credits: 2,
            retry_after_ms: 0,
        }
        .encode(&mut resp);
        server_side.try_write(&resp).unwrap();
        c.poll();
        assert!(c.is_welcomed());
        assert_eq!((c.conn_id(), c.credits()), (9, 2));

        assert!(c.try_send(&cmd()));
        assert!(c.try_send(&cmd()));
        assert!(!c.try_send(&cmd()), "window exhausted");
        assert_eq!(c.in_flight(), 2);
        c.poll();

        // Settle seq 1 as Accepted (credit back), seq 2 as Shed.
        let mut resp = Vec::new();
        ResponseFrame {
            kind: RespKind::Accepted,
            code: 0,
            conn: 9,
            seq: 1,
            credits: 1,
            retry_after_ms: 0,
        }
        .encode(&mut resp);
        ResponseFrame {
            kind: RespKind::Shed,
            code: crate::frame::SHED_OVERLOAD,
            conn: 9,
            seq: 2,
            credits: 1,
            retry_after_ms: 40,
        }
        .encode(&mut resp);
        server_side.try_write(&resp).unwrap();
        assert_eq!(c.poll(), 2);
        let s = c.stats();
        assert_eq!((s.accepted, s.shed), (1, 1));
        assert_eq!(c.credits(), 2);
        assert_eq!(c.in_flight(), 0);
        assert_eq!(c.take_retry_hint(), Some(40));
        assert_eq!(c.take_retry_hint(), None);
    }
}
