//! TCP serving: a non-blocking listener in front of [`EngineServer`].
//!
//! There is no async runtime or epoll shim in this workspace, so the
//! network path is the same readiness-polling loop as loopback: the
//! listener is non-blocking, every accepted socket becomes a
//! [`TcpTransport`] attached to the engine server, and each
//! [`TcpServer::pump`] accepts pending connections and runs one batch
//! cycle.  One thread drives everything — sockets, admission, and the
//! engine — which keeps the command path deterministic relative to
//! batch boundaries even over real sockets.

use crate::client::Client;
use crate::server::{EngineServer, PumpReport, ShutdownOutcome};
use crate::transport::TcpTransport;
use std::io;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A TCP front end around an [`EngineServer`].
pub struct TcpServer {
    listener: TcpListener,
    server: EngineServer,
}

impl TcpServer {
    /// Bind `addr` (use port 0 for an ephemeral port) in non-blocking
    /// mode and serve `server` behind it.
    pub fn bind(addr: SocketAddr, server: EngineServer) -> io::Result<TcpServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        Ok(TcpServer { listener, server })
    }

    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    pub fn server(&self) -> &EngineServer {
        &self.server
    }

    pub fn server_mut(&mut self) -> &mut EngineServer {
        &mut self.server
    }

    /// Accept every connection waiting on the listener; returns how
    /// many were attached.
    pub fn poll_accept(&mut self) -> usize {
        let mut accepted = 0;
        loop {
            match self.listener.accept() {
                Ok((stream, _peer)) => match TcpTransport::new(stream) {
                    Ok(t) => {
                        self.server.attach(Box::new(t));
                        accepted += 1;
                    }
                    Err(_) => continue,
                },
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
        accepted
    }

    /// One serving cycle: accept, then one engine-server batch cycle.
    pub fn pump(&mut self) -> PumpReport {
        self.poll_accept();
        self.server.pump()
    }

    /// Pump until `stop` is raised, sleeping briefly on idle cycles so
    /// an idle server does not spin a core.  Returns the shutdown
    /// outcome (drain, ledger proof, snapshot).
    pub fn serve(mut self, stop: &Arc<AtomicBool>) -> ShutdownOutcome {
        while !stop.load(Ordering::Relaxed) {
            let r = self.pump();
            if r.frames == 0 && r.commands == 0 {
                std::thread::sleep(std::time::Duration::from_micros(200));
            }
        }
        self.server.shutdown()
    }

    /// Graceful stop without the serve loop.
    pub fn shutdown(self) -> ShutdownOutcome {
        self.server.shutdown()
    }
}

impl Client<TcpTransport> {
    /// Connect a client session over TCP.
    pub fn connect_tcp(addr: SocketAddr, tenant: u32) -> io::Result<Client<TcpTransport>> {
        Ok(Client::connect(TcpTransport::connect(addr)?, tenant))
    }
}
