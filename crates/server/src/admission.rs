//! Admission control: credit windows, per-tenant token buckets, and the
//! overload-shed decision — the serving layer's hot path.
//!
//! Everything here is latch-free: credit consumption happens once per
//! received command and the per-tenant counters once per decision, so
//! this module must never take a lock (enforced by `cargo xtask lint`,
//! rule R2).  The three protocols:
//!
//! * [`CreditWindow`] — bounded outstanding commands per connection.
//!   The server consumes one credit per command it *reads* and regrants
//!   it only when the command is settled at a batch boundary; when the
//!   window is empty the server simply stops reading that connection
//!   (backpressure by withholding grants, not by buffering).
//!   Invariant: `available <= limit`, always — proptested below.
//! * [`TokenBucket`] — per-tenant rate limit in milli-ops, refilled by
//!   wall (or virtual) time.  Packs `(last_refill_ms, tokens_milli)`
//!   into one atomic word so refill+take is a single CAS.
//! * [`Admission`] — the per-command decision combining the watermark
//!   shed check (computed by the server at batch boundaries) with the
//!   tenant's bucket, bumping the tenant's counter shard as it decides.

// ordering: Relaxed is the only ordering this module imports — every
// atomic here is its own ground truth (credit/token words updated by
// CAS, monotonic telemetry counters); no other memory is published
// through them, so no Acquire/Release pairing is needed.
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering::Relaxed};

/// A bounded credit window: at most `limit` commands outstanding.
#[derive(Debug)]
pub struct CreditWindow {
    available: AtomicU32,
    limit: u32,
}

impl CreditWindow {
    /// A full window of `limit` credits (the Welcome grant).
    pub fn new(limit: u32) -> Self {
        CreditWindow {
            available: AtomicU32::new(limit),
            limit,
        }
    }

    pub fn limit(&self) -> u32 {
        self.limit
    }

    pub fn available(&self) -> u32 {
        self.available.load(Relaxed)
    }

    /// Consume one credit; `false` when the window is exhausted (the
    /// caller must stall, not buffer).
    // HOT-PATH-ROOT: per-request credit check on the accept path.
    pub fn try_consume(&self) -> bool {
        let mut cur = self.available.load(Relaxed);
        loop {
            if cur == 0 {
                return false;
            }
            match self
                .available
                .compare_exchange(cur, cur - 1, Relaxed, Relaxed)
            {
                Ok(_) => return true,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Return `n` credits to the window, saturating at `limit`.  Returns
    /// how many were actually granted — the total ever available can
    /// therefore never exceed the configured bound.
    // HOT-PATH-ROOT: per-completion credit return on the reply path.
    pub fn regrant(&self, n: u32) -> u32 {
        let mut cur = self.available.load(Relaxed);
        loop {
            let granted = n.min(self.limit - cur);
            if granted == 0 {
                return 0;
            }
            match self
                .available
                .compare_exchange(cur, cur + granted, Relaxed, Relaxed)
            {
                Ok(_) => return granted,
                Err(seen) => cur = seen,
            }
        }
    }
}

/// Milli-ops per op: bucket arithmetic is in 1/1000 ops so slow refill
/// rates stay representable.
const MILLI: u64 = 1_000;

fn pack(last_ms: u32, tokens_milli: u32) -> u64 {
    ((last_ms as u64) << 32) | tokens_milli as u64
}

fn unpack(word: u64) -> (u32, u32) {
    ((word >> 32) as u32, word as u32)
}

/// A per-tenant token bucket over a caller-supplied clock.
///
/// Time is passed in (`now_ns`) rather than read here so the
/// deterministic loopback tests and the virtual-clock runtime can drive
/// refill boundaries exactly.
#[derive(Debug)]
pub struct TokenBucket {
    /// `(last_refill_ms << 32) | tokens_milli`, CAS-updated.
    state: AtomicU64,
    capacity_milli: u32,
    refill_milli_per_sec: u64,
}

impl TokenBucket {
    /// A bucket holding at most `capacity_ops`, refilled at
    /// `refill_ops_per_sec`, starting full at time 0.
    pub fn new(capacity_ops: u32, refill_ops_per_sec: u32) -> Self {
        let capacity_milli = capacity_ops.saturating_mul(MILLI as u32);
        TokenBucket {
            state: AtomicU64::new(pack(0, capacity_milli)),
            capacity_milli,
            refill_milli_per_sec: refill_ops_per_sec as u64 * MILLI,
        }
    }

    /// Tokens currently in the bucket, in whole ops (after a refill to
    /// `now_ns`; read-only, does not update the bucket).
    pub fn level_ops(&self, now_ns: u64) -> u32 {
        let (last_ms, tokens) = unpack(self.state.load(Relaxed));
        (self.refilled(last_ms, tokens, now_ns) / MILLI as u32)
            .min(self.capacity_milli / MILLI as u32)
    }

    fn refilled(&self, last_ms: u32, tokens_milli: u32, now_ns: u64) -> u32 {
        let now_ms = (now_ns / 1_000_000) as u32;
        let elapsed_ms = now_ms.wrapping_sub(last_ms) as u64;
        let refill = elapsed_ms * self.refill_milli_per_sec / 1_000;
        (tokens_milli as u64 + refill).min(self.capacity_milli as u64) as u32
    }

    /// Take `ops` whole ops from the bucket.  On failure returns the
    /// retry-after hint in milliseconds (how long until the bucket will
    /// hold `ops` again at the configured refill rate).
    pub fn try_take(&self, ops: u32, now_ns: u64) -> Result<(), u32> {
        let cost = ops as u64 * MILLI;
        let now_ms = (now_ns / 1_000_000) as u32;
        let mut cur = self.state.load(Relaxed);
        loop {
            let (last_ms, tokens) = unpack(cur);
            let filled = self.refilled(last_ms, tokens, now_ns) as u64;
            if filled < cost {
                let deficit = cost - filled;
                if self.refill_milli_per_sec == 0 {
                    return Err(u32::MAX);
                }
                let ms = deficit * 1_000 / self.refill_milli_per_sec;
                return Err((ms.max(1)).min(u32::MAX as u64) as u32);
            }
            let next = pack(now_ms, (filled - cost) as u32);
            match self.state.compare_exchange(cur, next, Relaxed, Relaxed) {
                Ok(_) => return Ok(()),
                Err(seen) => cur = seen,
            }
        }
    }
}

/// Per-tenant admission counter shard (exported per tenant as
/// `eris_server_*_total{tenant=...}`).
#[derive(Debug, Default)]
pub struct TenantShard {
    /// Commands admitted and routed into the engine.
    pub accepted: AtomicU64,
    /// Commands shed by the overload watermark.
    pub shed: AtomicU64,
    /// Commands denied by the tenant's token bucket.
    pub quota_denied: AtomicU64,
    /// Pump cycles in which a connection of this tenant had frames
    /// waiting but an empty credit window (backpressure engaged).
    pub credits_stalled: AtomicU64,
    /// Commands answered with a typed reject (decode/routing/protocol).
    pub rejected: AtomicU64,
}

/// A plain-integer copy of one tenant's shard.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantCounts {
    pub tenant: u32,
    pub accepted: u64,
    pub shed: u64,
    pub quota_denied: u64,
    pub credits_stalled: u64,
    pub rejected: u64,
}

impl TenantShard {
    pub fn counts(&self, tenant: u32) -> TenantCounts {
        TenantCounts {
            tenant,
            accepted: self.accepted.load(Relaxed),
            shed: self.shed.load(Relaxed),
            quota_denied: self.quota_denied.load(Relaxed),
            credits_stalled: self.credits_stalled.load(Relaxed),
            rejected: self.rejected.load(Relaxed),
        }
    }
}

/// Admission-control configuration.
#[derive(Debug, Clone)]
pub struct AdmissionConfig {
    /// Outstanding-command credits per connection.
    pub credit_limit: u32,
    /// Token-bucket burst capacity per tenant, in ops.
    pub quota_capacity_ops: u32,
    /// Token-bucket refill rate per tenant, in ops/second.
    pub quota_refill_ops_per_sec: u32,
    /// Shed once incoming-buffer occupancy (pending/capacity) crosses
    /// this fraction at a batch boundary.
    pub shed_occupancy: f64,
    /// Shed once routed-but-unexecuted commands cross this depth.
    pub shed_in_flight: u64,
    /// Retry hint attached to overload sheds.
    pub shed_retry_after_ms: u32,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            credit_limit: 64,
            quota_capacity_ops: 100_000,
            quota_refill_ops_per_sec: 1_000_000,
            shed_occupancy: 0.75,
            shed_in_flight: u64::MAX,
            shed_retry_after_ms: 50,
        }
    }
}

/// The outcome of one admission decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admit {
    Granted,
    /// Over the tenant's token bucket.
    QuotaDenied {
        retry_after_ms: u32,
    },
    /// Engine-side watermark crossed.
    Overloaded {
        retry_after_ms: u32,
    },
    /// The tenant id is not in the admission table at all (handshake
    /// bypass or config mismatch): a protocol violation, never retried.
    UnknownTenant,
}

/// The engine-side load signals the server samples at batch boundaries
/// and holds fixed for every decision in that batch.
#[derive(Debug, Clone, Copy, Default)]
pub struct LoadSignal {
    /// Incoming-buffer occupancy in `[0, 1]`.
    pub occupancy: f64,
    /// Sub-commands enqueued but not yet executed.
    pub in_flight: u64,
}

/// Per-tenant admission state: one bucket + one counter shard each.
#[derive(Debug)]
pub struct Admission {
    cfg: AdmissionConfig,
    tenants: Vec<(TokenBucket, TenantShard)>,
}

impl Admission {
    pub fn new(cfg: AdmissionConfig, num_tenants: u32) -> Self {
        let tenants = (0..num_tenants)
            .map(|_| {
                (
                    TokenBucket::new(cfg.quota_capacity_ops, cfg.quota_refill_ops_per_sec),
                    TenantShard::default(),
                )
            })
            .collect();
        Admission { cfg, tenants }
    }

    pub fn config(&self) -> &AdmissionConfig {
        &self.cfg
    }

    pub fn num_tenants(&self) -> u32 {
        self.tenants.len() as u32
    }

    /// The counter shard of `tenant`, or `None` for an id the table
    /// does not know — admission is total over untrusted tenant ids.
    pub fn shard(&self, tenant: u32) -> Option<&TenantShard> {
        self.tenants.get(tenant as usize).map(|(_, s)| s)
    }

    /// Decide one command of `ops` logical operations for `tenant`.
    /// Overload is checked first so a shedding server stops draining
    /// quota; the bucket is only charged for commands that pass it.
    /// Bumps the tenant's `shed` / `quota_denied` / `accepted` counters.
    // HOT-PATH-ROOT: the per-request admission decision; runs on
    // every network frame before any queueing.
    pub fn admit(&self, tenant: u32, ops: u32, now_ns: u64, load: LoadSignal) -> Admit {
        // Total over untrusted input: an id beyond the table (a handshake
        // bypass or a config mismatch) is a verdict, not a panic.
        let Some((bucket, shard)) = self.tenants.get(tenant as usize) else {
            return Admit::UnknownTenant;
        };
        if load.occupancy >= self.cfg.shed_occupancy || load.in_flight >= self.cfg.shed_in_flight {
            shard.shed.fetch_add(1, Relaxed);
            return Admit::Overloaded {
                retry_after_ms: self.cfg.shed_retry_after_ms,
            };
        }
        match bucket.try_take(ops, now_ns) {
            Ok(()) => {
                shard.accepted.fetch_add(1, Relaxed);
                Admit::Granted
            }
            Err(retry_after_ms) => {
                shard.quota_denied.fetch_add(1, Relaxed);
                Admit::QuotaDenied { retry_after_ms }
            }
        }
    }

    /// Undo the `accepted` bump for a command that later failed to
    /// route (it becomes `rejected` instead) — keeps the conservation
    /// ledger `accepted == routed` exact.
    pub fn unaccept(&self, tenant: u32) {
        // An unknown id never had an `accepted` bump to undo.
        if let Some((_, shard)) = self.tenants.get(tenant as usize) {
            shard.accepted.fetch_sub(1, Relaxed);
            shard.rejected.fetch_add(1, Relaxed);
        }
    }

    pub fn counts(&self) -> Vec<TenantCounts> {
        self.tenants
            .iter()
            .enumerate()
            .map(|(t, (_, shard))| shard.counts(t as u32))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn credit_exhaustion_stall_regrant_cycle() {
        let w = CreditWindow::new(3);
        assert_eq!(w.available(), 3);
        assert!(w.try_consume());
        assert!(w.try_consume());
        assert!(w.try_consume());
        // Exhausted: the caller must stall.
        assert!(!w.try_consume());
        assert_eq!(w.available(), 0);
        // Regrant one — exactly one more command may proceed.
        assert_eq!(w.regrant(1), 1);
        assert!(w.try_consume());
        assert!(!w.try_consume());
        // Over-regranting saturates at the limit, never above.
        assert_eq!(w.regrant(100), 3);
        assert_eq!(w.available(), 3);
        assert_eq!(w.regrant(1), 0);
        assert_eq!(w.available(), 3);
    }

    #[test]
    fn token_bucket_refill_boundaries() {
        // 10 ops capacity, 1000 ops/s refill = 1 op/ms.
        let b = TokenBucket::new(10, 1000);
        let ms = |m: u64| m * 1_000_000;
        assert_eq!(b.level_ops(0), 10);
        for _ in 0..10 {
            assert_eq!(b.try_take(1, 0), Ok(()));
        }
        // Empty at t=0: retry hint is the exact refill time for 1 op.
        assert_eq!(b.try_take(1, 0), Err(1));
        // 999us later: still short (refill granularity is whole ms).
        assert!(b.try_take(1, 999_000).is_err());
        // At t=1ms exactly one op has refilled.
        assert_eq!(b.try_take(1, ms(1)), Ok(()));
        assert!(b.try_take(1, ms(1)).is_err());
        // A long sleep refills to capacity, not beyond.
        assert_eq!(b.level_ops(ms(100_000)), 10);
        assert_eq!(b.try_take(10, ms(100_000)), Ok(()));
        assert!(b.try_take(1, ms(100_000)).is_err());
        // Multi-op costs give proportional retry hints.
        assert_eq!(b.try_take(5, ms(100_000)), Err(5));
    }

    #[test]
    fn zero_refill_bucket_denies_forever_once_drained() {
        let b = TokenBucket::new(2, 0);
        assert_eq!(b.try_take(2, 0), Ok(()));
        assert_eq!(b.try_take(1, u64::MAX / 2), Err(u32::MAX));
    }

    #[test]
    fn admission_orders_overload_before_quota() {
        let cfg = AdmissionConfig {
            credit_limit: 4,
            quota_capacity_ops: 2,
            quota_refill_ops_per_sec: 0,
            shed_occupancy: 0.5,
            shed_in_flight: 100,
            shed_retry_after_ms: 77,
        };
        let adm = Admission::new(cfg, 2);
        let calm = LoadSignal::default();
        let hot = LoadSignal {
            occupancy: 0.9,
            in_flight: 0,
        };
        // Overloaded: shed without charging the bucket.
        assert_eq!(
            adm.admit(0, 1, 0, hot),
            Admit::Overloaded { retry_after_ms: 77 }
        );
        // Calm again: the two banked ops are still there.
        assert_eq!(adm.admit(0, 1, 0, calm), Admit::Granted);
        assert_eq!(adm.admit(0, 1, 0, calm), Admit::Granted);
        assert!(matches!(
            adm.admit(0, 1, 0, calm),
            Admit::QuotaDenied { .. }
        ));
        // Tenants are isolated: tenant 1 still has its full bucket.
        assert_eq!(adm.admit(1, 1, 0, calm), Admit::Granted);
        // Deep in-flight backlog sheds too.
        let deep = LoadSignal {
            occupancy: 0.0,
            in_flight: 100,
        };
        assert!(matches!(adm.admit(1, 1, 0, deep), Admit::Overloaded { .. }));
        let counts = adm.counts();
        assert_eq!(counts[0].accepted, 2);
        assert_eq!(counts[0].shed, 1);
        assert_eq!(counts[0].quota_denied, 1);
        assert_eq!(counts[1].accepted, 1);
        assert_eq!(counts[1].shed, 1);
    }

    #[test]
    fn out_of_range_tenant_ids_are_a_verdict_not_a_panic() {
        let adm = Admission::new(AdmissionConfig::default(), 2);
        assert_eq!(
            adm.admit(2, 1, 0, LoadSignal::default()),
            Admit::UnknownTenant
        );
        assert_eq!(
            adm.admit(u32::MAX, 1, 0, LoadSignal::default()),
            Admit::UnknownTenant
        );
        assert!(adm.shard(2).is_none());
        // unaccept on an unknown id is a no-op, not an underflow.
        adm.unaccept(7);
        assert!(adm.counts().iter().all(|c| c.rejected == 0));
        // Known tenants are unaffected.
        assert_eq!(adm.admit(1, 1, 0, LoadSignal::default()), Admit::Granted);
    }

    #[test]
    fn unaccept_moves_accepted_to_rejected() {
        let adm = Admission::new(AdmissionConfig::default(), 1);
        assert_eq!(adm.admit(0, 1, 0, LoadSignal::default()), Admit::Granted);
        adm.unaccept(0);
        let c = adm.counts()[0];
        assert_eq!((c.accepted, c.rejected), (0, 1));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Under any interleaving of consumes and regrants the window
        /// never exceeds its configured bound and never goes negative
        /// (`available` is unsigned; the model tracks it exactly).
        #[test]
        fn credits_never_exceed_the_bound(
            limit in 1u32..32,
            ops in proptest::collection::vec((0u8..2, 1u32..8), 0..200),
        ) {
            let w = CreditWindow::new(limit);
            let mut model = limit;
            let mut granted_total = limit as u64;
            for (kind, n) in ops {
                if kind == 0 {
                    let got = w.try_consume();
                    prop_assert_eq!(got, model > 0);
                    if got {
                        model -= 1;
                    }
                } else {
                    let granted = w.regrant(n);
                    prop_assert_eq!(granted, n.min(limit - model));
                    model += granted;
                    granted_total += granted as u64;
                }
                prop_assert!(w.available() <= limit, "window above bound");
                prop_assert_eq!(w.available(), model);
            }
            // Total credits ever granted == initial grant + regrants the
            // window actually accepted; consumed+available never exceeds it.
            prop_assert!(w.available() as u64 <= granted_total);
        }

        /// The bucket never holds more than its capacity and never goes
        /// negative, for any op/time sequence (time is monotone).
        #[test]
        fn token_bucket_conserves(
            cap in 1u32..64,
            rate in 0u32..5000,
            steps in proptest::collection::vec((0u64..5_000_000, 1u32..4), 0..100),
        ) {
            let b = TokenBucket::new(cap, rate);
            let mut now = 0u64;
            for (dt, ops) in steps {
                now += dt;
                let level_before = b.level_ops(now);
                prop_assert!(level_before <= cap);
                match b.try_take(ops, now) {
                    Ok(()) => prop_assert!(level_before >= ops),
                    Err(retry) => {
                        prop_assert!(level_before < ops);
                        prop_assert!(retry >= 1);
                        // The hint is honest: waiting that long refills
                        // enough tokens (when the rate is nonzero).
                        if rate > 0 && retry != u32::MAX {
                            let later = now + retry as u64 * 1_000_000 + 1_000_000;
                            prop_assert!(b.level_ops(later) >= ops.min(cap));
                        }
                    }
                }
            }
        }
    }
}
