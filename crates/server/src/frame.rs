//! The length-prefixed binary framing of the serving layer.
//!
//! A frame is a fixed header plus an opaque payload; the only payload
//! the server ever interprets is the stable [`DataCommand`] encoding
//! from `eris_core::command` — this module adds **no** second command
//! wire format, just the connection/tenant/credit bookkeeping around it.
//!
//! ```text
//! request  (client -> server), 22-byte header:
//!   [magic 0x45]['H'|'C'|'B' kind][tenant u32][conn u32][seq u64][len u32]
//!   [len bytes payload]            payload = DataCommand encoding (kind C)
//!
//! response (server -> client), 23-byte header, no payload:
//!   [magic 0x65][kind][code][conn u32][seq u64][credits u32][retry_ms u32]
//! ```
//!
//! `seq` is the connection's credit-window sequence number: the client
//! stamps every command with a monotonically increasing `seq`, and every
//! response echoes the `seq` it settles, so a client can match grants to
//! outstanding commands without any buffering on the server side.
//!
//! Network bytes are hostile.  Decoding never panics, never allocates
//! more than [`MAX_PAYLOAD_BYTES`], and distinguishes "need more bytes"
//! (`Ok(None)`) from a protocol violation (`Err`), which the server
//! answers with a typed reject and a close.

use eris_core::DataCommand;

/// First byte of every request frame.
pub const REQ_MAGIC: u8 = 0x45;
/// First byte of every response frame.
pub const RESP_MAGIC: u8 = 0x65;

/// Request header: magic, kind, tenant, conn, seq, payload length.
pub const REQ_HEADER_BYTES: usize = 1 + 1 + 4 + 4 + 8 + 4;
/// Response header: magic, kind, code, conn, seq, credits, retry_ms.
pub const RESP_HEADER_BYTES: usize = 1 + 1 + 1 + 4 + 8 + 4 + 4;

/// Hard cap on a declared payload length.  A hostile length prefix can
/// therefore demand at most 64 KiB of buffering, never gigabytes.
pub const MAX_PAYLOAD_BYTES: u32 = 64 * 1024;

/// What a client may ask for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReqKind {
    /// Open a session for `tenant`; answered with `Welcome` + a credit grant.
    Hello,
    /// One `DataCommand` (the payload), charged against credits + quota.
    Command,
    /// Orderly close; answered with `Goodbye`.
    Bye,
}

impl ReqKind {
    pub fn tag(self) -> u8 {
        match self {
            ReqKind::Hello => 1,
            ReqKind::Command => 2,
            ReqKind::Bye => 3,
        }
    }

    pub fn from_tag(t: u8) -> Option<ReqKind> {
        match t {
            1 => Some(ReqKind::Hello),
            2 => Some(ReqKind::Command),
            3 => Some(ReqKind::Bye),
            _ => None,
        }
    }
}

/// How the server settles one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RespKind {
    /// Session open; `credits` carries the initial window grant.
    Welcome,
    /// Command admitted and routed; `credits` carries the regrant.
    Accepted,
    /// Load shed: not executed, retry after `retry_after_ms`.  The
    /// consumed credit is returned (`credits`).
    Shed,
    /// Tenant over its token-bucket quota; same credit-return semantics.
    QuotaDenied,
    /// Malformed or unroutable command; `code` says why.
    Rejected,
    /// Session closed (client `Bye` or server shutdown).
    Goodbye,
}

impl RespKind {
    pub fn tag(self) -> u8 {
        match self {
            RespKind::Welcome => 1,
            RespKind::Accepted => 2,
            RespKind::Shed => 3,
            RespKind::QuotaDenied => 4,
            RespKind::Rejected => 5,
            RespKind::Goodbye => 6,
        }
    }

    pub fn from_tag(t: u8) -> Option<RespKind> {
        match t {
            1 => Some(RespKind::Welcome),
            2 => Some(RespKind::Accepted),
            3 => Some(RespKind::Shed),
            4 => Some(RespKind::QuotaDenied),
            5 => Some(RespKind::Rejected),
            6 => Some(RespKind::Goodbye),
            _ => None,
        }
    }
}

/// `code` values carried by `Shed` responses.
pub const SHED_OVERLOAD: u8 = 1;
/// The client sent a command with no credit outstanding — a protocol
/// violation under the credit window, settled (not silently dropped).
pub const SHED_CREDIT_VIOLATION: u8 = 2;

/// `code` values carried by `Rejected` responses.
pub const REJ_DECODE: u8 = 1;
pub const REJ_ROUTING: u8 = 2;
pub const REJ_PROTOCOL: u8 = 3;
pub const REJ_TENANT: u8 = 4;

/// One decoded request frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestFrame {
    pub kind: ReqKind,
    pub tenant: u32,
    pub conn: u32,
    pub seq: u64,
    pub payload: Vec<u8>,
}

/// One decoded response frame (fixed-size, no payload).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResponseFrame {
    pub kind: RespKind,
    pub code: u8,
    pub conn: u32,
    pub seq: u64,
    /// Credits granted (Welcome) or returned to the window (everything
    /// that settles a command).
    pub credits: u32,
    /// Retry hint for `Shed` / `QuotaDenied`, 0 otherwise.
    pub retry_after_ms: u32,
}

/// Why a byte stream is not a valid frame stream.  Any of these is
/// grounds to reject and close the connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    BadMagic(u8),
    UnknownKind(u8),
    /// Declared payload length above [`MAX_PAYLOAD_BYTES`].
    Oversized {
        declared: u32,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::BadMagic(b) => write!(f, "bad frame magic {b:#04x}"),
            FrameError::UnknownKind(t) => write!(f, "unknown frame kind {t}"),
            FrameError::Oversized { declared } => write!(
                f,
                "declared payload {declared} bytes exceeds cap {MAX_PAYLOAD_BYTES}"
            ),
        }
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn read_u32(b: &[u8]) -> u32 {
    u32::from_le_bytes([b[0], b[1], b[2], b[3]])
}

fn read_u64(b: &[u8]) -> u64 {
    u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]])
}

impl RequestFrame {
    /// A `Command` frame wrapping one `DataCommand`.
    pub fn command(tenant: u32, conn: u32, seq: u64, cmd: &DataCommand) -> RequestFrame {
        let mut payload = Vec::with_capacity(cmd.encoded_len());
        cmd.encode(&mut payload);
        RequestFrame {
            kind: ReqKind::Command,
            tenant,
            conn,
            seq,
            payload,
        }
    }

    // HOT-PATH-CUT: network frame assembly on the session thread;
    // the frame owns its output vector by design.
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.push(REQ_MAGIC);
        out.push(self.kind.tag());
        put_u32(out, self.tenant);
        put_u32(out, self.conn);
        put_u64(out, self.seq);
        put_u32(out, self.payload.len() as u32);
        out.extend_from_slice(&self.payload);
    }

    /// Decode one frame from the front of `buf`, advancing it only on
    /// success.  `Ok(None)` means the frame is not complete yet (read
    /// more bytes); `Err` means the stream is not speaking this protocol.
    pub fn try_decode(buf: &mut &[u8]) -> Result<Option<RequestFrame>, FrameError> {
        if buf.len() < REQ_HEADER_BYTES {
            // Partial headers are only "incomplete" if what we have so
            // far could still become a valid header.
            if let Some(&m) = buf.first() {
                if m != REQ_MAGIC {
                    return Err(FrameError::BadMagic(m));
                }
            }
            return Ok(None);
        }
        let b = *buf;
        if b[0] != REQ_MAGIC {
            return Err(FrameError::BadMagic(b[0]));
        }
        let kind = ReqKind::from_tag(b[1]).ok_or(FrameError::UnknownKind(b[1]))?;
        let tenant = read_u32(&b[2..]);
        let conn = read_u32(&b[6..]);
        let seq = read_u64(&b[10..]);
        let len = read_u32(&b[18..]);
        if len > MAX_PAYLOAD_BYTES {
            return Err(FrameError::Oversized { declared: len });
        }
        let total = REQ_HEADER_BYTES + len as usize;
        if b.len() < total {
            return Ok(None);
        }
        let payload = b[REQ_HEADER_BYTES..total].to_vec();
        *buf = &b[total..];
        Ok(Some(RequestFrame {
            kind,
            tenant,
            conn,
            seq,
            payload,
        }))
    }
}

impl ResponseFrame {
    // HOT-PATH-CUT: network frame assembly, as RequestFrame::encode.
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.push(RESP_MAGIC);
        out.push(self.kind.tag());
        out.push(self.code);
        put_u32(out, self.conn);
        put_u64(out, self.seq);
        put_u32(out, self.credits);
        put_u32(out, self.retry_after_ms);
    }

    /// Same contract as [`RequestFrame::try_decode`].
    pub fn try_decode(buf: &mut &[u8]) -> Result<Option<ResponseFrame>, FrameError> {
        if buf.len() < RESP_HEADER_BYTES {
            if let Some(&m) = buf.first() {
                if m != RESP_MAGIC {
                    return Err(FrameError::BadMagic(m));
                }
            }
            return Ok(None);
        }
        let b = *buf;
        if b[0] != RESP_MAGIC {
            return Err(FrameError::BadMagic(b[0]));
        }
        let kind = RespKind::from_tag(b[1]).ok_or(FrameError::UnknownKind(b[1]))?;
        let frame = ResponseFrame {
            kind,
            code: b[2],
            conn: read_u32(&b[3..]),
            seq: read_u64(&b[7..]),
            credits: read_u32(&b[15..]),
            retry_after_ms: read_u32(&b[19..]),
        };
        *buf = &b[RESP_HEADER_BYTES..];
        Ok(Some(frame))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eris_core::{DataObjectId, Payload};

    fn sample_cmd() -> DataCommand {
        DataCommand {
            object: DataObjectId(3),
            ticket: 42,
            payload: Payload::Lookup {
                keys: vec![1, 2, 3],
            },
        }
    }

    #[test]
    fn request_roundtrip_including_split_delivery() {
        let f = RequestFrame::command(7, 9, 1001, &sample_cmd());
        let mut bytes = Vec::new();
        f.encode(&mut bytes);
        // Every prefix is "incomplete", never an error, never a frame.
        for cut in 0..bytes.len() {
            let mut cur = &bytes[..cut];
            assert_eq!(RequestFrame::try_decode(&mut cur), Ok(None), "cut={cut}");
        }
        let mut cur = bytes.as_slice();
        let back = RequestFrame::try_decode(&mut cur).unwrap().unwrap();
        assert!(cur.is_empty());
        assert_eq!(back, f);
        let mut dec = &back.payload[..];
        assert_eq!(DataCommand::try_decode(&mut dec).unwrap(), sample_cmd());
    }

    #[test]
    fn response_roundtrip() {
        let r = ResponseFrame {
            kind: RespKind::Shed,
            code: SHED_OVERLOAD,
            conn: 4,
            seq: 77,
            credits: 1,
            retry_after_ms: 250,
        };
        let mut bytes = Vec::new();
        r.encode(&mut bytes);
        assert_eq!(bytes.len(), RESP_HEADER_BYTES);
        for cut in 0..bytes.len() {
            let mut cur = &bytes[..cut];
            assert_eq!(ResponseFrame::try_decode(&mut cur), Ok(None));
        }
        let mut cur = bytes.as_slice();
        assert_eq!(ResponseFrame::try_decode(&mut cur), Ok(Some(r)));
        assert!(cur.is_empty());
    }

    #[test]
    fn hostile_lengths_and_magic_are_typed_errors() {
        // Oversized declared length: rejected before any buffering.
        let f = RequestFrame {
            kind: ReqKind::Command,
            tenant: 0,
            conn: 0,
            seq: 0,
            payload: vec![],
        };
        let mut bytes = Vec::new();
        f.encode(&mut bytes);
        bytes[18..22].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(
            RequestFrame::try_decode(&mut bytes.as_slice()),
            Err(FrameError::Oversized { declared: u32::MAX })
        );

        // Wrong magic is rejected from the very first byte.
        assert_eq!(
            RequestFrame::try_decode(&mut &[0xFFu8][..]),
            Err(FrameError::BadMagic(0xFF))
        );
        assert_eq!(
            ResponseFrame::try_decode(&mut &[0x00u8, 1, 2][..]),
            Err(FrameError::BadMagic(0x00))
        );

        // Unknown kinds are typed, not panics.
        let mut bad = bytes.clone();
        bad[18..22].copy_from_slice(&0u32.to_le_bytes());
        bad[1] = 200;
        assert_eq!(
            RequestFrame::try_decode(&mut bad.as_slice()),
            Err(FrameError::UnknownKind(200))
        );
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Arbitrary bytes never panic the request decoder, and the
        /// cursor only advances when a whole frame came off the front.
        #[test]
        fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(0u8..=255, 0..128)) {
            let mut cur = bytes.as_slice();
            let before = cur;
            match RequestFrame::try_decode(&mut cur) {
                Ok(Some(f)) => {
                    let consumed = before.len() - cur.len();
                    prop_assert_eq!(consumed, REQ_HEADER_BYTES + f.payload.len());
                }
                Ok(None) | Err(_) => prop_assert_eq!(cur, before),
            }
            let mut rcur = bytes.as_slice();
            let rbefore = rcur;
            match ResponseFrame::try_decode(&mut rcur) {
                Ok(Some(_)) => prop_assert_eq!(rbefore.len() - rcur.len(), RESP_HEADER_BYTES),
                Ok(None) | Err(_) => prop_assert_eq!(rcur, rbefore),
            }
        }

        /// A stream of concatenated frames decodes back frame-for-frame
        /// regardless of how the bytes were chunked by the transport.
        #[test]
        fn frame_streams_reassemble(
            frames in proptest::collection::vec(
                (1u8..=3, 0u32..8, 0u32..8, 0u64..1000, proptest::collection::vec(0u8..=255, 0..32)),
                1..8,
            ),
            chunk in 1usize..64,
        ) {
            let frames: Vec<RequestFrame> = frames
                .into_iter()
                .map(|(k, tenant, conn, seq, payload)| RequestFrame {
                    kind: ReqKind::from_tag(k).unwrap(),
                    tenant,
                    conn,
                    seq,
                    payload,
                })
                .collect();
            let mut stream = Vec::new();
            for f in &frames {
                f.encode(&mut stream);
            }
            // Feed the stream in `chunk`-byte slices through a reassembly
            // buffer, the way a transport would.
            let mut buf: Vec<u8> = Vec::new();
            let mut got = Vec::new();
            for piece in stream.chunks(chunk) {
                buf.extend_from_slice(piece);
                loop {
                    let mut cur = buf.as_slice();
                    match RequestFrame::try_decode(&mut cur) {
                        Ok(Some(f)) => {
                            let consumed = buf.len() - cur.len();
                            buf.drain(..consumed);
                            got.push(f);
                        }
                        Ok(None) => break,
                        Err(e) => panic!("unexpected frame error: {e}"),
                    }
                }
            }
            prop_assert!(buf.is_empty());
            prop_assert_eq!(got, frames);
        }
    }
}
