//! Byte transports behind one trait: in-process loopback pipes (the
//! deterministic tier-1 path) and non-blocking TCP (the network path).
//!
//! The server core is transport-agnostic: it appends whatever bytes are
//! available, parses frames out of its own reassembly buffer, and
//! writes response bytes back.  "Async" here is readiness polling — the
//! workspace has no epoll shim and no async runtime, so every transport
//! is non-blocking and the serving loop multiplexes by polling at batch
//! boundaries (see `crates/server/src/server.rs` and `tcp.rs`).

use parking_lot::Mutex;
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A non-blocking bidirectional byte stream.
pub trait Transport: Send {
    /// Append any available inbound bytes to `buf`; returns how many
    /// arrived.  `Ok(0)` means nothing available right now (or peer
    /// gone — check [`Transport::is_open`]).
    fn try_read(&mut self, buf: &mut Vec<u8>) -> io::Result<usize>;

    /// Write as many of `bytes` as the transport will take without
    /// blocking; returns how many were written.
    fn try_write(&mut self, bytes: &[u8]) -> io::Result<usize>;

    /// False once the peer is gone or the stream was closed locally.
    fn is_open(&self) -> bool;

    /// Close the stream; further reads/writes return `Ok(0)`.
    fn close(&mut self);
}

/// One direction of an in-process pipe.
#[derive(Clone, Default)]
pub struct Pipe {
    inner: Arc<PipeInner>,
}

#[derive(Default)]
struct PipeInner {
    bytes: Mutex<VecDeque<u8>>,
    closed: AtomicBool,
}

impl Pipe {
    // HOT-PATH-CUT: loopback test transport — Mutex-based by design,
    // used by the harness, never on the engine's latch-free paths.
    pub fn push(&self, data: &[u8]) {
        self.inner.bytes.lock().extend(data.iter().copied());
    }

    pub fn drain_into(&self, out: &mut Vec<u8>) -> usize {
        let mut q = self.inner.bytes.lock();
        let n = q.len();
        out.extend(q.drain(..));
        n
    }

    // HOT-PATH-CUT: loopback test transport, as `push`.
    pub fn len(&self) -> usize {
        self.inner.bytes.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn close(&self) {
        self.inner.closed.store(true, Ordering::Relaxed);
    }

    pub fn is_closed(&self) -> bool {
        self.inner.closed.load(Ordering::Relaxed)
    }
}

/// A transport over two shared pipes (read side + write side).
pub struct PipeTransport {
    rx: Pipe,
    tx: Pipe,
}

/// A connected pair of in-process transports: bytes written on one end
/// become readable on the other.  Deterministic: no sockets, no
/// threads, no timeouts — the tier-1 test path.
pub fn loopback_pair() -> (PipeTransport, PipeTransport) {
    let a_to_b = Pipe::default();
    let b_to_a = Pipe::default();
    (
        PipeTransport {
            rx: b_to_a.clone(),
            tx: a_to_b.clone(),
        },
        PipeTransport {
            rx: a_to_b,
            tx: b_to_a,
        },
    )
}

impl PipeTransport {
    /// Build from explicit pipes (the TCP bridge wires sockets to the
    /// same shape: a worker thread shovels socket bytes into `rx` and
    /// drains `tx` back to the socket).
    pub fn from_pipes(rx: Pipe, tx: Pipe) -> Self {
        PipeTransport { rx, tx }
    }
}

impl Transport for PipeTransport {
    fn try_read(&mut self, buf: &mut Vec<u8>) -> io::Result<usize> {
        Ok(self.rx.drain_into(buf))
    }

    fn try_write(&mut self, bytes: &[u8]) -> io::Result<usize> {
        if self.tx.is_closed() {
            return Ok(0);
        }
        self.tx.push(bytes);
        Ok(bytes.len())
    }

    fn is_open(&self) -> bool {
        // Closing either direction closes the connection for both ends;
        // already-piped bytes stay readable via `try_read`.
        !self.rx.is_closed() && !self.tx.is_closed()
    }

    fn close(&mut self) {
        self.rx.close();
        self.tx.close();
    }
}

/// A non-blocking TCP transport.
pub struct TcpTransport {
    stream: TcpStream,
    open: bool,
}

impl TcpTransport {
    /// Wrap a connected stream, switching it to non-blocking mode and
    /// disabling Nagle (frames are small; latency matters).
    pub fn new(stream: TcpStream) -> io::Result<TcpTransport> {
        stream.set_nonblocking(true)?;
        let _ = stream.set_nodelay(true);
        Ok(TcpTransport { stream, open: true })
    }

    /// Connect to `addr` and wrap the stream.
    pub fn connect(addr: std::net::SocketAddr) -> io::Result<TcpTransport> {
        TcpTransport::new(TcpStream::connect(addr)?)
    }
}

impl Transport for TcpTransport {
    fn try_read(&mut self, buf: &mut Vec<u8>) -> io::Result<usize> {
        if !self.open {
            return Ok(0);
        }
        let mut total = 0;
        let mut chunk = [0u8; 4096];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    // Orderly shutdown by the peer.
                    self.open = false;
                    break;
                }
                Ok(n) => {
                    buf.extend_from_slice(&chunk[..n]);
                    total += n;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    self.open = false;
                    return Err(e);
                }
            }
        }
        Ok(total)
    }

    fn try_write(&mut self, bytes: &[u8]) -> io::Result<usize> {
        if !self.open {
            return Ok(0);
        }
        let mut written = 0;
        while written < bytes.len() {
            match self.stream.write(&bytes[written..]) {
                Ok(0) => {
                    self.open = false;
                    break;
                }
                Ok(n) => written += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    self.open = false;
                    return Err(e);
                }
            }
        }
        Ok(written)
    }

    fn is_open(&self) -> bool {
        self.open
    }

    fn close(&mut self) {
        self.open = false;
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loopback_carries_bytes_both_ways() {
        let (mut a, mut b) = loopback_pair();
        assert_eq!(a.try_write(b"hello").unwrap(), 5);
        let mut got = Vec::new();
        assert_eq!(b.try_read(&mut got).unwrap(), 5);
        assert_eq!(got, b"hello");
        // Nothing more to read: would-block, not an error.
        assert_eq!(b.try_read(&mut got).unwrap(), 0);
        assert_eq!(b.try_write(b"yo").unwrap(), 2);
        let mut back = Vec::new();
        assert_eq!(a.try_read(&mut back).unwrap(), 2);
        assert_eq!(back, b"yo");
    }

    #[test]
    fn closed_loopback_stops_accepting_writes() {
        let (mut a, mut b) = loopback_pair();
        a.try_write(b"tail").unwrap();
        b.close();
        assert_eq!(a.try_write(b"more").unwrap(), 0);
        assert!(!b.is_open());
    }
}
