//! `cargo xtask lint` — the per-line discipline rules R1–R5, now
//! running on the lexer's masked views instead of the old `code_of`
//! string stripper.
//!
//! The rules are unchanged (see DESIGN.md § Concurrency model):
//!
//! * **R1 ordering-comment** — in hot-path modules, every line
//!   mentioning `Ordering::` needs a `// ordering:` comment within the
//!   lookback window.
//! * **R2 no-locks-in-hot-paths** — no `Mutex`/`RwLock` in hot-path
//!   modules unless the file is allowlisted with a reason.
//! * **R3 unsafe-allowlist** — `unsafe` only in allowlisted files, and
//!   always with a `// SAFETY:` comment in the window.
//! * **R4 no-std-atomics-in-ported-files** — eris-sync-ported modules
//!   must not import std atomics/UnsafeCell/spin_loop directly.
//! * **R5 deny-unsafe-op** — crates containing unsafe code carry
//!   `#![deny(unsafe_op_in_unsafe_fn)]`.
//!
//! What the lexer swap fixes (regression-tested in the fixture suite):
//! `//` inside a string no longer truncates real code, `'"'` no longer
//! opens a phantom string, raw strings and block comments are masked,
//! and justification markers now only count when they sit in an actual
//! comment — a marker smuggled inside a string literal is ignored.

use std::path::Path;

use crate::lexer::lex;
use crate::{Config, Violation, LOOKBACK, R4_FORBIDDEN};

/// True when a comment containing `marker` sits on `idx` or within the
/// lookback window above it.  Searches comment text only.
pub fn has_comment_within_lookback(comments: &[String], idx: usize, marker: &str) -> bool {
    let start = idx.saturating_sub(LOOKBACK);
    let end = idx.min(comments.len().saturating_sub(1));
    comments[start..=end].iter().any(|c| c.contains(marker))
}

/// True when `code` contains `unsafe` as a standalone token — not as
/// part of an identifier like `unsafe_op_in_unsafe_fn`.
pub fn contains_unsafe_token(code: &str) -> bool {
    let bytes = code.as_bytes();
    let mut from = 0;
    while let Some(i) = code[from..].find("unsafe") {
        let at = from + i;
        let end = at + "unsafe".len();
        let ident = |b: u8| b.is_ascii_alphanumeric() || b == b'_';
        let pre = at > 0 && ident(bytes[at - 1]);
        let post = end < bytes.len() && ident(bytes[end]);
        if !pre && !post {
            return true;
        }
        from = end;
    }
    false
}

pub fn lint_file(path: &Path, config: &Config, out: &mut Vec<Violation>) {
    let Ok(text) = std::fs::read_to_string(path) else {
        out.push(Violation {
            rule: "R0",
            file: path.to_path_buf(),
            line: 0,
            message: "unreadable file".into(),
        });
        return;
    };
    let lexed = lex(&text);
    let cut = lexed.test_cut(&text);
    let raw_lines: Vec<&str> = text.lines().collect();
    let is_hot = config.hot_paths.iter().any(|p| p == path);
    let lock_allowed = config.lock_allowlist.iter().any(|p| p == path);
    let unsafe_allowed = config.unsafe_allowlist.iter().any(|p| p == path);
    let is_ported = config.ported_files.iter().any(|p| p == path);

    for (idx, raw) in raw_lines.iter().enumerate() {
        // Test modules sit at the bottom of every module in this repo;
        // everything from a column-0 `#[cfg(test)]` on is test code.
        if idx >= cut {
            break;
        }
        let code = &lexed.code[idx];
        let lineno = idx + 1;

        // R1: every ordering choice on a hot path is justified.
        if is_hot
            && code.contains("Ordering::")
            && !has_comment_within_lookback(&lexed.comments, idx, "// ordering:")
        {
            out.push(Violation {
                rule: "R1",
                file: path.to_path_buf(),
                line: lineno,
                message: format!(
                    "`Ordering::` with no `// ordering:` comment within \
                     {LOOKBACK} lines: `{}`",
                    raw.trim()
                ),
            });
        }

        // R2: no locks on latch-free paths.
        if is_hot && !lock_allowed && (code.contains("Mutex") || code.contains("RwLock")) {
            out.push(Violation {
                rule: "R2",
                file: path.to_path_buf(),
                line: lineno,
                message: format!(
                    "lock on a hot path (allowlist it in xtask with a \
                     reason if this is control-plane): `{}`",
                    raw.trim()
                ),
            });
        }

        // R3: unsafe only where allowlisted, always argued.
        if contains_unsafe_token(code) {
            if !unsafe_allowed {
                out.push(Violation {
                    rule: "R3",
                    file: path.to_path_buf(),
                    line: lineno,
                    message: format!("`unsafe` outside the allowlisted files: `{}`", raw.trim()),
                });
            } else if !has_comment_within_lookback(&lexed.comments, idx, "// SAFETY:") {
                out.push(Violation {
                    rule: "R3",
                    file: path.to_path_buf(),
                    line: lineno,
                    message: format!(
                        "`unsafe` with no `// SAFETY:` comment within \
                         {LOOKBACK} lines: `{}`",
                        raw.trim()
                    ),
                });
            }
        }

        // R4: ported modules must stay on the eris-sync facade.
        if is_ported {
            for forbidden in R4_FORBIDDEN {
                if code.contains(forbidden) {
                    out.push(Violation {
                        rule: "R4",
                        file: path.to_path_buf(),
                        line: lineno,
                        message: format!(
                            "`{forbidden}` bypasses the eris-sync facade \
                             (and loom): `{}`",
                            raw.trim()
                        ),
                    });
                }
            }
        }
    }
}

/// R5: every crate with unsafe code denies `unsafe_op_in_unsafe_fn`.
pub fn lint_crate_attrs(root: &Path, out: &mut Vec<Violation>) {
    let Ok(entries) = std::fs::read_dir(root.join("crates")) else {
        return;
    };
    for entry in entries.flatten() {
        let crate_dir = entry.path();
        if crate_dir.is_dir() {
            check_crate_deny_attr(&crate_dir, out);
        }
    }
    check_crate_deny_attr(&root.join("shims/loom"), out);
}

pub fn check_crate_deny_attr(crate_dir: &Path, out: &mut Vec<Violation>) {
    let mut files = Vec::new();
    crate::collect_rs_files(&crate_dir.join("src"), &mut files);
    let has_unsafe = files.iter().any(|f| {
        std::fs::read_to_string(f).is_ok_and(|text| {
            let lexed = lex(&text);
            let cut = lexed.test_cut(&text);
            lexed
                .code
                .iter()
                .take(cut)
                .any(|l| contains_unsafe_token(l))
        })
    });
    if !has_unsafe {
        return;
    }
    let lib = crate_dir.join("src/lib.rs");
    let denies = std::fs::read_to_string(&lib).is_ok_and(|text| {
        lex(&text)
            .code
            .iter()
            .any(|l| l.contains("#![deny(unsafe_op_in_unsafe_fn)]"))
    });
    if !denies {
        out.push(Violation {
            rule: "R5",
            file: lib,
            line: 1,
            message: "crate contains unsafe code but lib.rs lacks \
                      `#![deny(unsafe_op_in_unsafe_fn)]`"
                .into(),
        });
    }
}
