//! `cargo xtask analyze` — transitive hot-path rules over the
//! conservative call graph (A1–A4).
//!
//! Reachability starts at functions annotated `// HOT-PATH-ROOT:` and
//! follows every call edge the name-based resolver admits (see
//! `graph.rs`).  `// HOT-PATH-CUT:` marks a reviewed amortization or
//! control-plane boundary: the cut function and everything only
//! reachable through it are out of scope.
//!
//! Rules over the reachable set:
//!
//! * **A1 panic-freedom** — no `unwrap`/`expect`, no panicking macro
//!   (`panic!`, `unreachable!`, `todo!`, `unimplemented!`, `assert!`
//!   family), no index/slice expression, unless a `// BOUNDS:` comment
//!   within the lookback window argues why it cannot fire.
//!   `debug_assert!` is exempt (compiled out of release hot paths).
//! * **A2 allocation-freedom** — no allocating call (`Vec::push`,
//!   `collect`, `format!`, `Box::new`, `to_vec`, …) unless the site
//!   carries `// ALLOC-OK:` or the whole function is blessed with
//!   `// ALLOC-OK(fn):` (reviewed warm-up/amortized allocation).
//! * **A3 ordering-pairing** — in the hot-path files, every
//!   `Release`/`AcqRel` site names its paired acquire end via
//!   `pairs-with: <label>` (comma-separated list, labels `[a-z0-9-]`),
//!   and every named label must appear on both a release-side and an
//!   acquire-side line of the same file.
//! * **A4 no-blocking-calls** — no `.lock()`, `Mutex`/`RwLock` usage,
//!   `sleep`, `std::io`/`std::fs`/`std::net`/`std::process`, or stdout
//!   printing reachable from a root.  Lock hits are excused only by the
//!   file-level lock allowlist (shared with R2); io and sleep have no
//!   escape hatch short of a reviewed `HOT-PATH-CUT`.

use std::collections::HashSet;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use crate::graph::{FnMarks, Graph};
use crate::lexer::{lex, Lexed};
use crate::lint::has_comment_within_lookback;
use crate::parser::{parse_fns, Call, CallKind, FnItem};
use crate::{Violation, GRAPH_CRATES, HOT_PATHS, LOCK_ALLOWLIST, LOOKBACK};

const A1_MACROS: &[&str] = &[
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
    "assert",
    "assert_eq",
    "assert_ne",
];
const A1_METHODS: &[&str] = &["unwrap", "expect"];

const A2_MACROS: &[&str] = &["vec", "format"];
const A2_NAMES: &[&str] = &[
    "push",
    "push_back",
    "push_front",
    "insert",
    "extend",
    "extend_from_slice",
    "reserve",
    "resize",
    "collect",
    "to_vec",
    "to_string",
    "to_owned",
    "with_capacity",
];
/// `Q::new` allocates for these qualifiers (`Vec::new`/`String::new`
/// do not — they defer to the first push, which A2 catches).
const A2_NEW_QUALS: &[&str] = &["Box", "Arc", "Rc"];
const A2_FROM_QUALS: &[&str] = &["Box", "Arc", "Rc", "String", "Vec"];

const A4_METHODS: &[&str] = &["lock"];
const A4_NAMES: &[&str] = &["sleep"];
const A4_MACROS: &[&str] = &["println", "eprintln", "print", "eprint", "dbg"];
const A4_IO_SUBSTRINGS: &[&str] = &["std::io::", "std::fs::", "std::net::", "std::process::"];
const A4_LOCK_TYPES: &[&str] = &["Mutex", "RwLock"];

/// Inputs of one analyzer run; the real tree and the self-check
/// fixtures share every code path.
pub struct AnalyzeConfig {
    /// The call-graph universe (library crates).
    pub graph_files: Vec<PathBuf>,
    /// Files under the A3 ordering-pairing audit.
    pub a3_files: Vec<PathBuf>,
    /// Files allowed to hold locks (shared with R2).
    pub lock_allowlist: Vec<PathBuf>,
}

/// One lexed + parsed source file with per-fn annotation marks.
pub struct LoadedFile {
    pub path: PathBuf,
    pub lexed: Lexed,
    pub fns: Vec<FnItem>,
    pub marks: Vec<FnMarks>,
}

pub fn load_file(path: &Path) -> Option<LoadedFile> {
    let text = std::fs::read_to_string(path).ok()?;
    let lexed = lex(&text);
    let cut = lexed.test_cut(&text);
    let fns = parse_fns(&lexed, cut);
    let marks = fns.iter().map(|f| fn_marks(&lexed, f)).collect();
    Some(LoadedFile {
        path: path.to_path_buf(),
        lexed,
        fns,
        marks,
    })
}

/// Read a function's annotations from the contiguous comment/attribute
/// block directly above its signature (and the signature line itself).
/// Unlike site justifications this is *not* a fixed lookback window: a
/// blank non-comment line ends the block, so an annotation can never
/// bleed onto the next function.
fn fn_marks(lexed: &Lexed, item: &FnItem) -> FnMarks {
    let mut j = item.sig_line;
    let mut marks = FnMarks::default();
    loop {
        let comment = lexed.comments.get(j).map(String::as_str).unwrap_or("");
        if comment.contains("HOT-PATH-ROOT") {
            marks.root = true;
        }
        if comment.contains("HOT-PATH-CUT") {
            marks.cut = true;
        }
        if comment.contains("ALLOC-OK(fn):") {
            marks.alloc_ok_fn = true;
        }
        if j == 0 {
            break;
        }
        let above_code = lexed.code.get(j - 1).map(String::as_str).unwrap_or("");
        let above_comment = lexed.comments.get(j - 1).map(String::as_str).unwrap_or("");
        let is_attr = above_code.trim_start().starts_with('#');
        let is_comment_only = above_code.trim().is_empty() && !above_comment.is_empty();
        if is_attr || is_comment_only {
            j -= 1;
        } else {
            break;
        }
    }
    marks
}

/// The heart of the analyzer: build the graph, walk from the roots,
/// apply A1/A2/A4 to every reachable function, and audit A3 pairings.
pub fn run_analyze_with(config: &AnalyzeConfig) -> (Vec<Violation>, AnalyzeStats) {
    let files: Vec<LoadedFile> = config
        .graph_files
        .iter()
        .filter_map(|p| load_file(p))
        .collect();
    let graph = Graph::new(
        files.iter().map(|f| f.fns.iter().collect()).collect(),
        files.iter().map(|f| f.marks.clone()).collect(),
    );
    let (reachable, cuts) = graph.reachable();

    let mut out = Vec::new();
    let mut dedup: HashSet<(usize, usize, &'static str, String)> = HashSet::new();
    for &(fi, ii) in &reachable {
        let file = &files[fi];
        let item = &file.fns[ii];
        let marks = &file.marks[ii];
        check_fn(fi, file, item, marks, config, &mut dedup, &mut out);
    }
    for file in &files {
        if config.a3_files.contains(&file.path) {
            check_a3(file, &mut out);
        }
    }
    // A3 files outside the graph universe (fixture runs).
    for path in &config.a3_files {
        if !files.iter().any(|f| f.path == *path) {
            if let Some(file) = load_file(path) {
                check_a3(&file, &mut out);
            }
        }
    }
    out.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    let stats = AnalyzeStats {
        files: files.len(),
        roots: graph.roots().len(),
        reachable: reachable.len(),
        cuts: cuts.len(),
    };
    (out, stats)
}

pub struct AnalyzeStats {
    pub files: usize,
    pub roots: usize,
    pub reachable: usize,
    pub cuts: usize,
}

#[allow(clippy::too_many_arguments)]
fn push_once(
    dedup: &mut HashSet<(usize, usize, &'static str, String)>,
    out: &mut Vec<Violation>,
    file_idx: usize,
    rule: &'static str,
    file: &Path,
    line0: usize,
    key: String,
    message: String,
) {
    if dedup.insert((file_idx, line0, rule, key)) {
        out.push(Violation {
            rule,
            file: file.to_path_buf(),
            line: line0 + 1,
            message,
        });
    }
}

fn check_fn(
    fidx: usize,
    file: &LoadedFile,
    item: &FnItem,
    marks: &FnMarks,
    config: &AnalyzeConfig,
    dedup: &mut HashSet<(usize, usize, &'static str, String)>,
    out: &mut Vec<Violation>,
) {
    let lock_allowed = config.lock_allowlist.contains(&file.path);
    let qual = item.qualified();
    let bounds_ok =
        |line: usize| has_comment_within_lookback(&file.lexed.comments, line, "BOUNDS:");
    let alloc_ok =
        |line: usize| has_comment_within_lookback(&file.lexed.comments, line, "ALLOC-OK:");

    for call in &item.calls {
        if let Some(kind_word) = a1_call(call) {
            if !bounds_ok(call.line) {
                push_once(
                    dedup,
                    out,
                    fidx,
                    "A1",
                    &file.path,
                    call.line,
                    call.name.clone(),
                    format!(
                        "{kind_word} `{}` reachable from a hot-path root (in \
                         `{qual}`) with no `// BOUNDS:` justification within \
                         {LOOKBACK} lines",
                        call.name
                    ),
                );
            }
        }
        if !marks.alloc_ok_fn {
            if let Some(kind_word) = a2_call(call) {
                if !alloc_ok(call.line) {
                    push_once(
                        dedup,
                        out,
                        fidx,
                        "A2",
                        &file.path,
                        call.line,
                        call.name.clone(),
                        format!(
                            "{kind_word} `{}` reachable from a hot-path root \
                             (in `{qual}`) with no `// ALLOC-OK:` \
                             justification within {LOOKBACK} lines",
                            call.name
                        ),
                    );
                }
            }
        }
        if let Some(kind_word) = a4_call(call) {
            let excused = call.name == "lock" && lock_allowed;
            if !excused {
                push_once(
                    dedup,
                    out,
                    fidx,
                    "A4",
                    &file.path,
                    call.line,
                    call.name.clone(),
                    format!(
                        "{kind_word} `{}` reachable from a hot-path root (in \
                         `{qual}`) — blocking is not allowed on latch-free \
                         paths (cut the boundary with `// HOT-PATH-CUT:` if \
                         this is reviewed control-plane)",
                        call.name
                    ),
                );
            }
        }
    }

    for &line in &item.index_sites {
        if !bounds_ok(line) {
            push_once(
                dedup,
                out,
                fidx,
                "A1",
                &file.path,
                line,
                "[index]".into(),
                format!(
                    "index expression reachable from a hot-path root (in \
                     `{qual}`) with no `// BOUNDS:` justification within \
                     {LOOKBACK} lines"
                ),
            );
        }
    }

    // A4 type/path usage inside the body: io modules and lock types.
    let (b0, b1) = item.body;
    for line in b0..=b1.min(file.lexed.code.len().saturating_sub(1)) {
        let code = &file.lexed.code[line];
        for s in A4_IO_SUBSTRINGS {
            if code.contains(s) {
                push_once(
                    dedup,
                    out,
                    fidx,
                    "A4",
                    &file.path,
                    line,
                    (*s).into(),
                    format!("`{s}` usage reachable from a hot-path root (in `{qual}`)"),
                );
            }
        }
        if !lock_allowed {
            for s in A4_LOCK_TYPES {
                if code.contains(s) {
                    push_once(
                        dedup,
                        out,
                        fidx,
                        "A4",
                        &file.path,
                        line,
                        (*s).into(),
                        format!(
                            "`{s}` usage reachable from a hot-path root (in \
                             `{qual}`) — latch-free paths must not touch locks"
                        ),
                    );
                }
            }
        }
    }
}

fn a1_call(call: &Call) -> Option<&'static str> {
    match &call.kind {
        CallKind::Macro if A1_MACROS.contains(&call.name.as_str()) => Some("panicking macro"),
        CallKind::Method if A1_METHODS.contains(&call.name.as_str()) => Some("panicking call"),
        _ => None,
    }
}

fn a2_call(call: &Call) -> Option<&'static str> {
    match &call.kind {
        CallKind::Macro if A2_MACROS.contains(&call.name.as_str()) => Some("allocating macro"),
        CallKind::Method if A2_NAMES.contains(&call.name.as_str()) => Some("allocating call"),
        CallKind::Path(q) if A2_NAMES.contains(&call.name.as_str()) => {
            let _ = q;
            Some("allocating call")
        }
        CallKind::Path(q) if call.name == "new" && A2_NEW_QUALS.contains(&q.as_str()) => {
            Some("allocating constructor")
        }
        CallKind::Path(q) if call.name == "from" && A2_FROM_QUALS.contains(&q.as_str()) => {
            Some("allocating constructor")
        }
        _ => None,
    }
}

fn a4_call(call: &Call) -> Option<&'static str> {
    match &call.kind {
        CallKind::Macro if A4_MACROS.contains(&call.name.as_str()) => Some("io macro"),
        CallKind::Method if A4_METHODS.contains(&call.name.as_str()) => Some("lock acquisition"),
        _ if A4_NAMES.contains(&call.name.as_str()) => Some("blocking call"),
        _ => None,
    }
}

/// A3: every release-side ordering names its acquire end, and every
/// named label has both ends in the file.
fn check_a3(file: &LoadedFile, out: &mut Vec<Violation>) {
    let code = &file.lexed.code;
    let comments = &file.lexed.comments;
    // (label, line) per side.
    let mut release_labels: Vec<(String, usize)> = Vec::new();
    let mut acquire_labels: Vec<(String, usize)> = Vec::new();

    for (idx, line) in code.iter().enumerate() {
        let is_release = line.contains("Ordering::Release") || line.contains("Ordering::AcqRel");
        let is_acquire = line.contains("Ordering::Acquire") || line.contains("Ordering::AcqRel");
        if !is_release && !is_acquire {
            continue;
        }
        let labels = pair_labels_in_window(comments, idx);
        if is_release {
            if labels.is_empty() {
                out.push(Violation {
                    rule: "A3",
                    file: file.path.clone(),
                    line: idx + 1,
                    message: format!(
                        "release-side ordering with no `pairs-with:` label \
                         within {LOOKBACK} lines: `{}`",
                        line.trim()
                    ),
                });
            }
            for l in &labels {
                release_labels.push((l.clone(), idx));
            }
        }
        if is_acquire {
            for l in &labels {
                acquire_labels.push((l.clone(), idx));
            }
        }
    }

    let acq_set: HashSet<&String> = acquire_labels.iter().map(|(l, _)| l).collect();
    let rel_set: HashSet<&String> = release_labels.iter().map(|(l, _)| l).collect();
    let mut reported: HashSet<&String> = HashSet::new();
    for (label, line) in &release_labels {
        if !acq_set.contains(label) && reported.insert(label) {
            out.push(Violation {
                rule: "A3",
                file: file.path.clone(),
                line: line + 1,
                message: format!(
                    "pairing label `{label}` has a release side but no \
                     acquire side in this file"
                ),
            });
        }
    }
    for (label, line) in &acquire_labels {
        if !rel_set.contains(label) && reported.insert(label) {
            out.push(Violation {
                rule: "A3",
                file: file.path.clone(),
                line: line + 1,
                message: format!(
                    "pairing label `{label}` has an acquire side but no \
                     release side in this file"
                ),
            });
        }
    }
}

/// Parse `pairs-with: a, b` labels from the comments in the lookback
/// window of `idx`.  The list is comma-continued: it ends at the first
/// token without a trailing comma, so prose may follow on the same
/// comment.  Labels are `[a-z0-9-]+`.
fn pair_labels_in_window(comments: &[String], idx: usize) -> Vec<String> {
    let start = idx.saturating_sub(LOOKBACK);
    let end = idx.min(comments.len().saturating_sub(1));
    let mut out = Vec::new();
    for c in &comments[start..=end] {
        let mut rest = c.as_str();
        while let Some(i) = rest.find("pairs-with:") {
            rest = &rest[i + "pairs-with:".len()..];
            let mut more = true;
            let mut iter = rest.split_whitespace();
            while more {
                let Some(tok) = iter.next() else { break };
                more = tok.ends_with(',');
                let label: &str = tok.trim_matches(|ch: char| {
                    !(ch.is_ascii_lowercase() || ch.is_ascii_digit() || ch == '-')
                });
                if !label.is_empty()
                    && label
                        .chars()
                        .all(|ch| ch.is_ascii_lowercase() || ch.is_ascii_digit() || ch == '-')
                {
                    out.push(label.to_string());
                } else {
                    break;
                }
            }
        }
    }
    out
}

/// Real-tree configuration: graph over the library crates, A3 over the
/// hot-path files, lock allowlist shared with R2.
fn tree_config(root: &Path) -> AnalyzeConfig {
    let mut graph_files = Vec::new();
    for c in GRAPH_CRATES {
        crate::collect_rs_files(&root.join(c).join("src"), &mut graph_files);
    }
    graph_files.sort();
    AnalyzeConfig {
        graph_files,
        a3_files: HOT_PATHS.iter().map(|p| root.join(p)).collect(),
        lock_allowlist: LOCK_ALLOWLIST.iter().map(|(p, _)| root.join(p)).collect(),
    }
}

pub fn run_analyze(root: &Path) -> ExitCode {
    let config = tree_config(root);
    let (violations, stats) = run_analyze_with(&config);
    if violations.is_empty() {
        println!(
            "static analysis: {} roots, {} reachable fns ({} cut boundaries) \
             across {} files — clean",
            stats.roots, stats.reachable, stats.cuts, stats.files
        );
        if stats.roots == 0 {
            eprintln!("static analysis: no HOT-PATH-ROOT annotations found — nothing was proved");
            return ExitCode::FAILURE;
        }
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            eprintln!("{v}");
        }
        eprintln!(
            "static analysis: {} violation(s) over {} reachable fns from {} roots",
            violations.len(),
            stats.reachable,
            stats.roots
        );
        ExitCode::FAILURE
    }
}

/// Mutation-test the rules: every A-rule must fire on the seeded
/// fixture crate with exactly the seeded counts, and the negative
/// controls (unreachable, cut, justified) must stay silent — any
/// over-fire breaks the exact-count match just like a dead rule does.
pub fn run_analyze_self_check(root: &Path) -> ExitCode {
    let fixtures = root.join("crates/xtask/fixtures/analyze_crate");
    let hot = fixtures.join("hot.rs");
    let ordering = fixtures.join("ordering.rs");
    let config = AnalyzeConfig {
        graph_files: vec![hot.clone()],
        a3_files: vec![ordering.clone()],
        lock_allowlist: vec![],
    };
    let (violations, stats) = run_analyze_with(&config);
    let mut failed = false;
    for rule in ["A1", "A2", "A3", "A4"] {
        let n = violations.iter().filter(|v| v.rule == rule).count();
        let seeded = crate::seeded_count(rule, &[&hot, &ordering]);
        if n == seeded && n > 0 {
            println!("self-check {rule}: {n}/{seeded} seeded violations caught");
        } else {
            eprintln!(
                "self-check {rule}: caught {n}, seeded {seeded} — rule is {}",
                if n == 0 { "dead" } else { "miscounting" }
            );
            failed = true;
        }
    }
    if stats.roots == 0 {
        eprintln!("self-check: fixture root annotation was not recognised");
        failed = true;
    }
    if failed {
        for v in &violations {
            eprintln!("  {v}");
        }
        ExitCode::FAILURE
    } else {
        println!("self-check: all analyzer rules fire on the seeded fixtures");
        ExitCode::SUCCESS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_label_lists_are_comma_continued() {
        let comments = vec![
            "// ordering: Release publishes; pairs-with: ring-slot-seq.".to_string(),
            "// ordering: pairs-with: incoming-reserve, incoming-retire, then prose".to_string(),
        ];
        let labels = pair_labels_in_window(&comments, 1);
        assert_eq!(
            labels,
            vec![
                "ring-slot-seq",
                "incoming-reserve",
                "incoming-retire",
                "then"
            ]
        );
    }

    #[test]
    fn pair_label_list_stops_without_comma() {
        let comments =
            vec!["// ordering: pairs-with: incoming-writable the drain loop".to_string()];
        let labels = pair_labels_in_window(&comments, 0);
        assert_eq!(labels, vec!["incoming-writable"]);
    }
}
