//! `cargo xtask` — dependency-free static checks for the ERIS tree.
//!
//! Two passes share one lexer (`lexer.rs`), one item parser
//! (`parser.rs`) and one violation/self-check machinery:
//!
//! * `cargo xtask lint [--self-check]` — the per-line discipline rules
//!   R1–R5 (ordering comments, no locks on hot paths, unsafe
//!   allowlist, eris-sync facade, deny(unsafe_op_in_unsafe_fn)); see
//!   `lint.rs`.
//! * `cargo xtask analyze [--self-check]` — the transitive rules A1–A4
//!   (panic-freedom, allocation-freedom, ordering pairing, no blocking
//!   calls) over a conservative call graph rooted at `HOT-PATH-ROOT`
//!   annotations; see `analyze.rs` and `graph.rs`.
//!
//! Neither pass is a verifier: loom (see `shims/loom`) explores
//! interleavings, Miri and TSan catch undefined behaviour, and these
//! tools keep the source reviewable — every ordering choice justified
//! and paired, every unsafe block argued, every panic/allocation/lock
//! provably absent from (or explicitly argued on) the latch-free paths.
//! `--self-check` runs each pass against seeded violations in
//! `crates/xtask/fixtures` and fails unless every rule fires with the
//! exact seeded count, so a refactor that neuters or over-fires a rule
//! cannot land silently.

mod analyze;
mod graph;
mod lexer;
mod lint;
mod parser;

use std::fmt;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// How many lines above a flagged line a justifying comment may sit.
const LOOKBACK: usize = 10;

/// Hot-path modules: the latch-free structures and the counters updated
/// per command.  R1, R2, and the A3 pairing audit apply here.
const HOT_PATHS: &[&str] = &[
    "crates/core/src/routing/incoming.rs",
    "crates/core/src/routing/outgoing.rs",
    "crates/core/src/routing/mod.rs",
    "crates/core/src/aeu.rs",
    "crates/core/src/telemetry.rs",
    "crates/obs/src/ring.rs",
    "crates/obs/src/latency.rs",
    "crates/obs/src/exemplar.rs",
    "crates/server/src/admission.rs",
];

/// Hot-path files allowed to hold a lock, with the reason reviewers
/// accepted.  Everything here is control-plane: never per-command.
/// Shared by R2 (textual) and A4 (transitive).
const LOCK_ALLOWLIST: &[(&str, &str)] = &[
    (
        "crates/core/src/routing/mod.rs",
        "RwLock guards partition-table reconfiguration; lookups on the \
         command path read under a shared guard that is uncontended \
         outside rebalancing",
    ),
    (
        "crates/core/src/telemetry.rs",
        "RwLock guards object-counter registration (engine start-up); \
         per-command bumps go through relaxed atomics",
    ),
    (
        "crates/obs/src/latency.rs",
        "Mutex guards the latency-series map on the reporting path; the \
         record hot path only touches relaxed counters",
    ),
    (
        "crates/index/src/shared_tree.rs",
        "Mutex guards arena segment installation, taken only on the \
         first allocation in each 64Ki-node segment; the per-node fast \
         path is a fetch_add plus an Acquire null check",
    ),
];

/// Files allowed to contain `unsafe`.  Everything else must stay safe.
const UNSAFE_ALLOWLIST: &[&str] = &[
    "crates/column/src/simd.rs",
    "crates/core/src/routing/incoming.rs",
    "crates/index/src/hash_table.rs",
    "crates/index/src/shared_tree.rs",
    "crates/numa/src/affinity.rs",
    "crates/obs/src/exemplar.rs",
    "crates/obs/src/ring.rs",
    // The loom shim's own checker test builds deliberately racy cells
    // to prove the model catches them; every site is argued.
    "shims/loom/tests/model_checker.rs",
];

/// Modules ported onto the `eris-sync` facade: direct std primitives
/// here would silently escape loom model checking (R4).
const PORTED_FILES: &[&str] = &[
    "crates/core/src/routing/incoming.rs",
    "crates/obs/src/exemplar.rs",
    "crates/obs/src/ring.rs",
];

const R4_FORBIDDEN: &[&str] = &[
    "std::sync::atomic",
    "std::cell::UnsafeCell",
    "std::hint::spin_loop",
];

/// The call-graph universe: library crates only.  `bench`, `tests` and
/// `xtask` host harness code that legitimately panics and allocates;
/// the shims are test-only stand-ins for external crates (loom's own
/// `lock`/`store` impls must not swallow resolution of those names).
const GRAPH_CRATES: &[&str] = &[
    "crates/column",
    "crates/core",
    "crates/durability",
    "crates/index",
    "crates/mem",
    "crates/numa",
    "crates/obs",
    "crates/query",
    "crates/server",
    "crates/sync",
    "crates/workloads",
];

pub struct Violation {
    pub rule: &'static str,
    pub file: PathBuf,
    pub line: usize,
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {}:{}: {}",
            self.rule,
            self.file.display(),
            self.line,
            self.message
        )
    }
}

/// Which per-file rules to run and with what file classification.  The
/// real tree and the self-check fixtures share every code path.
pub struct Config {
    pub hot_paths: Vec<PathBuf>,
    pub lock_allowlist: Vec<PathBuf>,
    pub unsafe_allowlist: Vec<PathBuf>,
    pub ported_files: Vec<PathBuf>,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let root = repo_root();
    let self_check = args.iter().any(|a| a == "--self-check");
    match args.first().map(String::as_str) {
        Some("lint") => {
            if self_check {
                run_self_check(&root)
            } else {
                run_lint(&root)
            }
        }
        Some("analyze") => {
            if self_check {
                analyze::run_analyze_self_check(&root)
            } else {
                analyze::run_analyze(&root)
            }
        }
        _ => {
            eprintln!("usage: cargo xtask <lint|analyze> [--self-check]");
            ExitCode::FAILURE
        }
    }
}

/// The workspace root: xtask always runs via `cargo xtask`, so
/// CARGO_MANIFEST_DIR is `<root>/crates/xtask`.
fn repo_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .expect("crates/xtask has a workspace root two levels up")
        .to_path_buf()
}

fn run_lint(root: &Path) -> ExitCode {
    let config = Config {
        hot_paths: HOT_PATHS.iter().map(|p| root.join(p)).collect(),
        lock_allowlist: LOCK_ALLOWLIST.iter().map(|(p, _)| root.join(p)).collect(),
        unsafe_allowlist: UNSAFE_ALLOWLIST.iter().map(|p| root.join(p)).collect(),
        ported_files: PORTED_FILES.iter().map(|p| root.join(p)).collect(),
    };
    let mut files = Vec::new();
    collect_rs_files(&root.join("crates"), &mut files);
    // The loom shim is protocol-adjacent (the model checker the ported
    // files run under), so it is linted like first-party code.
    collect_rs_files(&root.join("shims/loom"), &mut files);
    files.sort();
    let mut violations = Vec::new();
    for file in &files {
        lint::lint_file(file, &config, &mut violations);
    }
    lint::lint_crate_attrs(root, &mut violations);
    if violations.is_empty() {
        println!("invariant lint: {} files clean ({} rules)", files.len(), 5);
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            eprintln!("{v}");
        }
        eprintln!("invariant lint: {} violation(s)", violations.len());
        ExitCode::FAILURE
    }
}

/// Prove the rules still bite: every rule must fire on the seeded
/// fixtures, and the fixture violations must be *exactly* the seeded
/// ones (`// seed:` manifest lines inside the fixtures).
fn run_self_check(root: &Path) -> ExitCode {
    let fixtures = root.join("crates/xtask/fixtures");
    let hot = fixtures.join("hot_path.rs");
    let cold = fixtures.join("cold_path.rs");
    let fake_lib = fixtures.join("fake_crate/src/lib.rs");
    let config = Config {
        hot_paths: vec![hot.clone()],
        lock_allowlist: vec![],
        unsafe_allowlist: vec![hot.clone()],
        ported_files: vec![hot.clone()],
    };
    let mut violations = Vec::new();
    for file in [&hot, &cold, &fake_lib] {
        lint::lint_file(file, &config, &mut violations);
    }
    // R5 on the fixture crate: it contains unsafe but no deny attribute.
    lint::check_crate_deny_attr(&fixtures.join("fake_crate"), &mut violations);

    let mut failed = false;
    for rule in ["R1", "R2", "R3", "R4", "R5"] {
        let n = violations.iter().filter(|v| v.rule == rule).count();
        let seeded = seeded_count(rule, &[&hot, &cold, &fake_lib]);
        if n == seeded && n > 0 {
            println!("self-check {rule}: {n}/{seeded} seeded violations caught");
        } else {
            eprintln!(
                "self-check {rule}: caught {n}, seeded {seeded} — rule is \
                 {}",
                if n == 0 { "dead" } else { "miscounting" }
            );
            failed = true;
        }
    }
    if failed {
        for v in &violations {
            eprintln!("  {v}");
        }
        ExitCode::FAILURE
    } else {
        println!("self-check: all rules fire on the seeded fixtures");
        ExitCode::SUCCESS
    }
}

/// Fixtures carry a manifest of their own seeded violations as
/// `// seed: R<N>`/`// seed: A<N>` lines, one per expected hit, so the
/// expected counts live next to the code that triggers them.
pub fn seeded_count(rule: &str, files: &[&PathBuf]) -> usize {
    files
        .iter()
        .filter_map(|f| std::fs::read_to_string(f).ok())
        .flat_map(|text| {
            text.lines()
                .filter(|l| l.trim_start().starts_with("// seed: "))
                .filter_map(|l| {
                    l.trim_start()["// seed: ".len()..]
                        .split_whitespace()
                        .next()
                        .map(str::to_string)
                })
                .collect::<Vec<_>>()
        })
        .filter(|r| r == rule)
        .count()
}

pub fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            // The seeded-violation fixtures are linted only by
            // --self-check, and generated build output is not source.
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if name == "fixtures" || name == "target" {
                continue;
            }
            collect_rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}
