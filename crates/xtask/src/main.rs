//! `cargo xtask lint` — the concurrency-invariant linter.
//!
//! A dependency-free, line-based scanner that enforces the discipline the
//! lock-free hot paths rely on.  It is deliberately a *discipline* linter,
//! not a verifier: loom (see `shims/loom`) explores interleavings, Miri and
//! TSan catch undefined behaviour, and this tool makes sure the source
//! stays reviewable — every ordering choice justified, every unsafe block
//! argued, no stray lock on a latch-free path.
//!
//! Rules (see DESIGN.md § Concurrency model):
//!
//! * **R1 ordering-comment** — in hot-path modules, every line mentioning
//!   `Ordering::` must have a `// ordering:` comment on the same line or
//!   within the preceding lookback window.
//! * **R2 no-locks-in-hot-paths** — hot-path modules must not use
//!   `Mutex`/`RwLock` unless the file is allowlisted with a reason.
//! * **R3 unsafe-allowlist** — `unsafe` code may appear only in
//!   allowlisted files, and every unsafe line needs a `// SAFETY:` comment
//!   on the same line or within the lookback window.
//! * **R4 no-std-atomics-in-ported-files** — modules ported to the
//!   `eris-sync` facade must not reach for `std::sync::atomic`,
//!   `std::cell::UnsafeCell`, or `std::hint::spin_loop` directly (that
//!   would silently bypass loom).
//! * **R5 deny-unsafe-op** — every crate containing unsafe code must
//!   carry `#![deny(unsafe_op_in_unsafe_fn)]` in its `lib.rs`.
//!
//! Heuristics, stated plainly: the scan is per-line, test code is skipped
//! from the first column-0 `#[cfg(test)]` to the end of the file (test
//! modules sit at the bottom of every module in this repo), and comment
//! adjacency is a fixed lookback window.  `--self-check` runs the rules
//! against seeded violations in `crates/xtask/fixtures` and fails unless
//! every rule fires, so a refactor that neuters a rule cannot land
//! silently.

use std::fmt;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// How many lines above a flagged line a justifying comment may sit.
const LOOKBACK: usize = 10;

/// Hot-path modules: the latch-free structures and the counters updated
/// per command.  R1 and R2 apply here.
const HOT_PATHS: &[&str] = &[
    "crates/core/src/routing/incoming.rs",
    "crates/core/src/routing/outgoing.rs",
    "crates/core/src/routing/mod.rs",
    "crates/core/src/aeu.rs",
    "crates/core/src/telemetry.rs",
    "crates/obs/src/ring.rs",
    "crates/obs/src/latency.rs",
    "crates/server/src/admission.rs",
];

/// Hot-path files allowed to hold a lock, with the reason reviewers
/// accepted.  Everything here is control-plane: never per-command.
const LOCK_ALLOWLIST: &[(&str, &str)] = &[
    (
        "crates/core/src/routing/mod.rs",
        "RwLock guards partition-table reconfiguration; lookups on the \
         command path read under a shared guard that is uncontended \
         outside rebalancing",
    ),
    (
        "crates/core/src/telemetry.rs",
        "RwLock guards object-counter registration (engine start-up); \
         per-command bumps go through relaxed atomics",
    ),
    (
        "crates/obs/src/latency.rs",
        "Mutex guards the latency-series map on the reporting path; the \
         record hot path only touches relaxed counters",
    ),
];

/// Files allowed to contain `unsafe`.  Everything else must stay safe.
const UNSAFE_ALLOWLIST: &[&str] = &[
    "crates/column/src/simd.rs",
    "crates/core/src/routing/incoming.rs",
    "crates/index/src/hash_table.rs",
    "crates/index/src/shared_tree.rs",
    "crates/numa/src/affinity.rs",
    "crates/obs/src/exemplar.rs",
    "crates/obs/src/ring.rs",
];

/// Modules ported onto the `eris-sync` facade: direct std primitives
/// here would silently escape loom model checking (R4).
const PORTED_FILES: &[&str] = &[
    "crates/core/src/routing/incoming.rs",
    "crates/obs/src/exemplar.rs",
    "crates/obs/src/ring.rs",
];

const R4_FORBIDDEN: &[&str] = &[
    "std::sync::atomic",
    "std::cell::UnsafeCell",
    "std::hint::spin_loop",
];

struct Violation {
    rule: &'static str,
    file: PathBuf,
    line: usize,
    message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {}:{}: {}",
            self.rule,
            self.file.display(),
            self.line,
            self.message
        )
    }
}

/// Which per-file rules to run and with what file classification.  The
/// real tree and the self-check fixtures share every code path.
struct Config {
    hot_paths: Vec<PathBuf>,
    lock_allowlist: Vec<PathBuf>,
    unsafe_allowlist: Vec<PathBuf>,
    ported_files: Vec<PathBuf>,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let root = repo_root();
    match args.first().map(String::as_str) {
        Some("lint") => {
            let self_check = args.iter().any(|a| a == "--self-check");
            if self_check {
                run_self_check(&root)
            } else {
                run_lint(&root)
            }
        }
        _ => {
            eprintln!("usage: cargo xtask lint [--self-check]");
            ExitCode::FAILURE
        }
    }
}

/// The workspace root: xtask always runs via `cargo xtask`, so
/// CARGO_MANIFEST_DIR is `<root>/crates/xtask`.
fn repo_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .expect("crates/xtask has a workspace root two levels up")
        .to_path_buf()
}

fn run_lint(root: &Path) -> ExitCode {
    let config = Config {
        hot_paths: HOT_PATHS.iter().map(|p| root.join(p)).collect(),
        lock_allowlist: LOCK_ALLOWLIST.iter().map(|(p, _)| root.join(p)).collect(),
        unsafe_allowlist: UNSAFE_ALLOWLIST.iter().map(|p| root.join(p)).collect(),
        ported_files: PORTED_FILES.iter().map(|p| root.join(p)).collect(),
    };
    let mut files = Vec::new();
    collect_rs_files(&root.join("crates"), &mut files);
    files.sort();
    let mut violations = Vec::new();
    for file in &files {
        lint_file(file, &config, &mut violations);
    }
    lint_crate_attrs(root, &mut violations);
    if violations.is_empty() {
        println!("invariant lint: {} files clean ({} rules)", files.len(), 5);
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            eprintln!("{v}");
        }
        eprintln!("invariant lint: {} violation(s)", violations.len());
        ExitCode::FAILURE
    }
}

/// Prove the rules still bite: every rule must fire on the seeded
/// fixtures, and the fixture violations must be *exactly* the seeded
/// ones (`// seed:` manifest lines inside the fixtures).
fn run_self_check(root: &Path) -> ExitCode {
    let fixtures = root.join("crates/xtask/fixtures");
    let hot = fixtures.join("hot_path.rs");
    let cold = fixtures.join("cold_path.rs");
    let fake_lib = fixtures.join("fake_crate/src/lib.rs");
    let config = Config {
        hot_paths: vec![hot.clone()],
        lock_allowlist: vec![],
        unsafe_allowlist: vec![hot.clone()],
        ported_files: vec![hot.clone()],
    };
    let mut violations = Vec::new();
    for file in [&hot, &cold, &fake_lib] {
        lint_file(file, &config, &mut violations);
    }
    // R5 on the fixture crate: it contains unsafe but no deny attribute.
    check_crate_deny_attr(&fixtures.join("fake_crate"), &mut violations);

    let mut failed = false;
    for rule in ["R1", "R2", "R3", "R4", "R5"] {
        let n = violations.iter().filter(|v| v.rule == rule).count();
        let seeded = seeded_count(rule, &[&hot, &cold, &fake_lib]);
        if n == seeded && n > 0 {
            println!("self-check {rule}: {n}/{seeded} seeded violations caught");
        } else {
            eprintln!(
                "self-check {rule}: caught {n}, seeded {seeded} — rule is \
                 {}",
                if n == 0 { "dead" } else { "miscounting" }
            );
            failed = true;
        }
    }
    if failed {
        for v in &violations {
            eprintln!("  {v}");
        }
        ExitCode::FAILURE
    } else {
        println!("self-check: all rules fire on the seeded fixtures");
        ExitCode::SUCCESS
    }
}

/// Fixtures carry a manifest of their own seeded violations as
/// `// seed: R<N>` lines, one per expected hit, so the expected counts
/// live next to the code that triggers them.
fn seeded_count(rule: &str, files: &[&PathBuf]) -> usize {
    files
        .iter()
        .filter_map(|f| std::fs::read_to_string(f).ok())
        .flat_map(|text| {
            text.lines()
                .filter(|l| l.trim_start().starts_with("// seed: "))
                .filter_map(|l| {
                    l.trim_start()["// seed: ".len()..]
                        .split_whitespace()
                        .next()
                        .map(str::to_string)
                })
                .collect::<Vec<_>>()
        })
        .filter(|r| r == rule)
        .count()
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            // The seeded-violation fixtures are linted only by
            // --self-check, and generated build output is not source.
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if name == "fixtures" || name == "target" {
                continue;
            }
            collect_rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// A line of code with comments and string literals crudely stripped —
/// enough to stop `// unsafe` or `"Mutex"` from counting as code.
fn code_of(line: &str) -> String {
    let line = match line.find("//") {
        Some(i) => &line[..i],
        None => line,
    };
    // Drop double-quoted string contents (no escape handling; good
    // enough for a discipline linter over rustfmt'd code).
    let mut out = String::with_capacity(line.len());
    let mut in_str = false;
    for c in line.chars() {
        match c {
            '"' => in_str = !in_str,
            c if !in_str => out.push(c),
            _ => {}
        }
    }
    out
}

fn has_comment_within_lookback(lines: &[&str], idx: usize, marker: &str) -> bool {
    let start = idx.saturating_sub(LOOKBACK);
    lines[start..=idx].iter().any(|l| l.contains(marker))
}

/// True when `code` contains `unsafe` as a standalone token — not as
/// part of an identifier like `unsafe_op_in_unsafe_fn` in a lint
/// attribute.
fn contains_unsafe_token(code: &str) -> bool {
    let bytes = code.as_bytes();
    let mut from = 0;
    while let Some(i) = code[from..].find("unsafe") {
        let at = from + i;
        let end = at + "unsafe".len();
        let ident = |b: u8| b.is_ascii_alphanumeric() || b == b'_';
        let pre = at > 0 && ident(bytes[at - 1]);
        let post = end < bytes.len() && ident(bytes[end]);
        if !pre && !post {
            return true;
        }
        from = end;
    }
    false
}

fn lint_file(path: &Path, config: &Config, out: &mut Vec<Violation>) {
    let Ok(text) = std::fs::read_to_string(path) else {
        out.push(Violation {
            rule: "R0",
            file: path.to_path_buf(),
            line: 0,
            message: "unreadable file".into(),
        });
        return;
    };
    let lines: Vec<&str> = text.lines().collect();
    let is_hot = config.hot_paths.iter().any(|p| p == path);
    let lock_allowed = config.lock_allowlist.iter().any(|p| p == path);
    let unsafe_allowed = config.unsafe_allowlist.iter().any(|p| p == path);
    let is_ported = config.ported_files.iter().any(|p| p == path);

    for (idx, raw) in lines.iter().enumerate() {
        // Test modules sit at the bottom of every module in this repo;
        // everything from a column-0 `#[cfg(test)]` on is test code.
        if raw.starts_with("#[cfg(test)]") {
            break;
        }
        let code = code_of(raw);
        let lineno = idx + 1;

        // R1: every ordering choice on a hot path is justified.
        if is_hot
            && code.contains("Ordering::")
            && !has_comment_within_lookback(&lines, idx, "// ordering:")
        {
            out.push(Violation {
                rule: "R1",
                file: path.to_path_buf(),
                line: lineno,
                message: format!(
                    "`Ordering::` with no `// ordering:` comment within \
                     {LOOKBACK} lines: `{}`",
                    raw.trim()
                ),
            });
        }

        // R2: no locks on latch-free paths.
        if is_hot && !lock_allowed && (code.contains("Mutex") || code.contains("RwLock")) {
            out.push(Violation {
                rule: "R2",
                file: path.to_path_buf(),
                line: lineno,
                message: format!(
                    "lock on a hot path (allowlist it in xtask with a \
                     reason if this is control-plane): `{}`",
                    raw.trim()
                ),
            });
        }

        // R3: unsafe only where allowlisted, always argued.
        if contains_unsafe_token(&code) {
            if !unsafe_allowed {
                out.push(Violation {
                    rule: "R3",
                    file: path.to_path_buf(),
                    line: lineno,
                    message: format!("`unsafe` outside the allowlisted files: `{}`", raw.trim()),
                });
            } else if !has_comment_within_lookback(&lines, idx, "// SAFETY:") {
                out.push(Violation {
                    rule: "R3",
                    file: path.to_path_buf(),
                    line: lineno,
                    message: format!(
                        "`unsafe` with no `// SAFETY:` comment within \
                         {LOOKBACK} lines: `{}`",
                        raw.trim()
                    ),
                });
            }
        }

        // R4: ported modules must stay on the eris-sync facade.
        if is_ported {
            for forbidden in R4_FORBIDDEN {
                if code.contains(forbidden) {
                    out.push(Violation {
                        rule: "R4",
                        file: path.to_path_buf(),
                        line: lineno,
                        message: format!(
                            "`{forbidden}` bypasses the eris-sync facade \
                             (and loom): `{}`",
                            raw.trim()
                        ),
                    });
                }
            }
        }
    }
}

/// R5: every crate with unsafe code denies `unsafe_op_in_unsafe_fn`.
fn lint_crate_attrs(root: &Path, out: &mut Vec<Violation>) {
    let Ok(entries) = std::fs::read_dir(root.join("crates")) else {
        return;
    };
    for entry in entries.flatten() {
        let crate_dir = entry.path();
        if crate_dir.is_dir() {
            check_crate_deny_attr(&crate_dir, out);
        }
    }
}

fn check_crate_deny_attr(crate_dir: &Path, out: &mut Vec<Violation>) {
    let mut files = Vec::new();
    collect_rs_files(&crate_dir.join("src"), &mut files);
    let has_unsafe = files.iter().any(|f| {
        std::fs::read_to_string(f).is_ok_and(|text| {
            text.lines()
                .take_while(|l| !l.starts_with("#[cfg(test)]"))
                .any(|l| contains_unsafe_token(&code_of(l)))
        })
    });
    if !has_unsafe {
        return;
    }
    let lib = crate_dir.join("src/lib.rs");
    let denies = std::fs::read_to_string(&lib).is_ok_and(|text| {
        text.lines()
            .any(|l| code_of(l).contains("#![deny(unsafe_op_in_unsafe_fn)]"))
    });
    if !denies {
        out.push(Violation {
            rule: "R5",
            file: lib,
            line: 1,
            message: "crate contains unsafe code but lib.rs lacks \
                      `#![deny(unsafe_op_in_unsafe_fn)]`"
                .into(),
        });
    }
}
