//! A small, dependency-free Rust lexer.
//!
//! This replaces the old `code_of` line stripper, which mishandled
//! `//` inside string literals, `'"'` char literals, raw strings, and
//! block comments (it never stripped the latter at all).  The lexer
//! walks the file once, tracking every literal and comment form the
//! reference grammar defines, and produces three per-line views plus a
//! token stream:
//!
//! * `code[i]`   — line `i` with every comment and every string/char
//!   literal *content* masked to spaces (delimiters kept), so substring
//!   rules (`Ordering::`, `Mutex`, …) only ever match real code;
//! * `comments[i]` — the comment text that covers line `i` (line
//!   comments, doc comments, and each line of a block comment), so
//!   justification markers (`// ordering:`, `// SAFETY:`, `BOUNDS:`)
//!   only ever match real comments;
//! * `tokens`    — identifiers and punctuation with line numbers, for
//!   the item parser and call-graph extraction.
//!
//! Handled: nested block comments, `//`/`///`/`//!` line comments,
//! `"…"` with escapes, byte strings `b"…"`, raw strings `r"…"` /
//! `r#"…"#` (any hash depth, also `br#"…"#`), char literals with
//! escapes (`'\''`, `'\\'`, `'\u{7FFF}'`), and the char-vs-lifetime
//! ambiguity (`'a'` is a char, `<'a>` is a lifetime).

/// One lexed token.  Literals are carried as [`TokKind::Lit`] with
/// their text masked — rules never need literal contents, only their
/// position (e.g. "an `[` after an identifier is an index site").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// 0-based line the token starts on.
    pub line: usize,
    pub kind: TokKind,
    /// Identifier text; single char for punctuation; empty for literals.
    pub text: String,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    Ident,
    /// String/char/number literal (contents irrelevant to every rule).
    Lit,
    /// A lifetime such as `'a` (distinct from a char literal).
    Lifetime,
    Punct,
}

/// A lexed source file: per-line masked views plus the token stream.
#[derive(Debug, Default)]
pub struct Lexed {
    pub code: Vec<String>,
    pub comments: Vec<String>,
    pub tokens: Vec<Tok>,
}

impl Lexed {
    /// The first line at or after which everything is test code: a
    /// column-0 `#[cfg(test)]` (test modules sit at the bottom of every
    /// module in this repo).  `usize::MAX` when absent.
    pub fn test_cut(&self, raw: &str) -> usize {
        raw.lines()
            .position(|l| l.starts_with("#[cfg(test)]"))
            .unwrap_or(usize::MAX)
    }
}

/// Lex `text` into per-line masked views and tokens.
pub fn lex(text: &str) -> Lexed {
    Lexer::new(text).run()
}

struct Lexer<'a> {
    chars: Vec<char>,
    pos: usize,
    line: usize,
    /// Masked code, built line by line.
    code: Vec<String>,
    comments: Vec<String>,
    tokens: Vec<Tok>,
    _text: &'a str,
}

impl<'a> Lexer<'a> {
    fn new(text: &'a str) -> Self {
        Lexer {
            chars: text.chars().collect(),
            pos: 0,
            line: 0,
            code: vec![String::new()],
            comments: vec![String::new()],
            tokens: Vec::new(),
            _text: text,
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    /// Consume one char, appending `masked` (or the char itself) to the
    /// current code line and tracking newlines.
    fn bump_code(&mut self) {
        let c = self.chars[self.pos];
        self.pos += 1;
        if c == '\n' {
            self.newline();
        } else {
            self.code[self.line].push(c);
        }
    }

    /// Consume one char as masked content (space in the code view).
    fn bump_masked(&mut self) {
        let c = self.chars[self.pos];
        self.pos += 1;
        if c == '\n' {
            self.newline();
        } else {
            self.code[self.line].push(' ');
        }
    }

    /// Consume one char as comment text (space in code, text in comments).
    fn bump_comment(&mut self) {
        let c = self.chars[self.pos];
        self.pos += 1;
        if c == '\n' {
            self.newline();
        } else {
            self.code[self.line].push(' ');
            self.comments[self.line].push(c);
        }
    }

    fn newline(&mut self) {
        self.line += 1;
        self.code.push(String::new());
        self.comments.push(String::new());
    }

    fn push_tok(&mut self, kind: TokKind, text: String) {
        self.tokens.push(Tok {
            line: self.line,
            kind,
            text,
        });
    }

    fn run(mut self) -> Lexed {
        while let Some(c) = self.peek(0) {
            match c {
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => self.string_literal(),
                'b' if self.peek(1) == Some('"') => {
                    self.bump_code(); // the `b` prefix stays code
                    self.string_literal();
                }
                'r' | 'b' if self.raw_string_ahead() => self.raw_string(),
                'r' if self.peek(1) == Some('#')
                    && self.peek(2).is_some_and(|c| c.is_alphabetic() || c == '_') =>
                {
                    // Raw identifier `r#ident`.
                    self.bump_code();
                    self.bump_code();
                    self.ident();
                }
                '\'' => self.char_or_lifetime(),
                c if c.is_whitespace() => self.bump_code(),
                c if c.is_alphabetic() || c == '_' => self.ident(),
                c if c.is_ascii_digit() => self.number(),
                _ => {
                    self.push_tok(TokKind::Punct, c.to_string());
                    self.bump_code();
                }
            }
        }
        Lexed {
            code: self.code,
            comments: self.comments,
            tokens: self.tokens,
        }
    }

    fn line_comment(&mut self) {
        // The `//` itself stays in the comment view so markers like
        // `// ordering:` match verbatim.
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                self.bump_comment(); // newline bookkeeping
                return;
            }
            self.bump_comment();
        }
    }

    fn block_comment(&mut self) {
        let mut depth = 0usize;
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                self.bump_comment();
                self.bump_comment();
            } else if c == '*' && self.peek(1) == Some('/') {
                self.bump_comment();
                self.bump_comment();
                depth -= 1;
                if depth == 0 {
                    return;
                }
            } else {
                self.bump_comment();
            }
        }
    }

    fn string_literal(&mut self) {
        self.bump_code(); // opening quote
        while let Some(c) = self.peek(0) {
            match c {
                '\\' => {
                    self.bump_masked();
                    if self.peek(0).is_some() {
                        self.bump_masked();
                    }
                }
                '"' => {
                    self.bump_code(); // closing quote
                    self.push_tok(TokKind::Lit, String::new());
                    return;
                }
                _ => self.bump_masked(),
            }
        }
    }

    /// Is a raw (byte) string starting here?  `r"`, `r#`, `br"`, `br#`.
    fn raw_string_ahead(&self) -> bool {
        let mut i = 1;
        if self.chars[self.pos] == 'b' {
            if self.peek(1) != Some('r') {
                return false;
            }
            i = 2;
        }
        loop {
            match self.peek(i) {
                Some('#') => i += 1,
                Some('"') => return true,
                _ => return false,
            }
        }
    }

    fn raw_string(&mut self) {
        // Consume prefix (`r` or `br`) and opening hashes as code.
        while let Some(c) = self.peek(0) {
            self.bump_code();
            if c == '"' {
                break;
            }
        }
        // Count the hashes we just consumed (scan back over the code line
        // is fragile across newlines; recount from the token stream is
        // overkill — recount from the chars before pos instead).
        let mut hashes = 0usize;
        let mut back = self.pos.saturating_sub(2); // before the quote
        while self.chars.get(back) == Some(&'#') {
            hashes += 1;
            if back == 0 {
                break;
            }
            back -= 1;
        }
        // Mask until `"` followed by `hashes` hashes.
        while let Some(c) = self.peek(0) {
            if c == '"' {
                let mut ok = true;
                for k in 0..hashes {
                    if self.peek(1 + k) != Some('#') {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    self.bump_code(); // closing quote
                    for _ in 0..hashes {
                        self.bump_code();
                    }
                    self.push_tok(TokKind::Lit, String::new());
                    return;
                }
            }
            self.bump_masked();
        }
    }

    fn char_or_lifetime(&mut self) {
        // `'\...'` and `'x'` are char literals; `'ident` (no closing
        // quote right after one char) is a lifetime.
        let is_char = match self.peek(1) {
            Some('\\') => true,
            Some(c) if c != '\'' => self.peek(2) == Some('\''),
            _ => false,
        };
        if !is_char {
            // Lifetime: consume `'` + identifier.
            let mut text = String::from("'");
            self.bump_code();
            while let Some(c) = self.peek(0) {
                if c.is_alphanumeric() || c == '_' {
                    text.push(c);
                    self.bump_code();
                } else {
                    break;
                }
            }
            self.push_tok(TokKind::Lifetime, text);
            return;
        }
        self.bump_code(); // opening quote
        while let Some(c) = self.peek(0) {
            match c {
                '\\' => {
                    self.bump_masked();
                    if self.peek(0).is_some() {
                        self.bump_masked();
                    }
                }
                '\'' => {
                    self.bump_code(); // closing quote
                    self.push_tok(TokKind::Lit, String::new());
                    return;
                }
                _ => self.bump_masked(),
            }
        }
    }

    fn ident(&mut self) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                text.push(c);
                self.bump_code();
            } else {
                break;
            }
        }
        self.push_tok(TokKind::Ident, text);
    }

    fn number(&mut self) {
        while let Some(c) = self.peek(0) {
            if c.is_ascii_alphanumeric() || c == '_' {
                self.bump_code();
            } else if c == '.' && self.peek(1).is_some_and(|d| d.is_ascii_digit()) {
                // Fraction: `1.5`, but not the range `0..5` or a method
                // call `1.max(2)`.
                self.bump_code();
            } else {
                break;
            }
        }
        self.push_tok(TokKind::Lit, String::new());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn code_lines(src: &str) -> Vec<String> {
        lex(src).code
    }

    fn comment_lines(src: &str) -> Vec<String> {
        lex(src).comments
    }

    #[test]
    fn slashes_inside_strings_stay_code() {
        // Regression: the old `code_of` truncated at the `//` inside the
        // URL, hiding the Mutex after it.
        let src = r#"let _u = "https://x"; let _g = Mutex::new(());"#;
        let code = &code_lines(src)[0];
        assert!(code.contains("Mutex"), "{code:?}");
        assert!(!code.contains("https"), "string content masked: {code:?}");
    }

    #[test]
    fn double_quote_char_literal_does_not_open_a_string() {
        // Regression: the old stripper treated `'"'` as opening a string
        // and swallowed the rest of the line.
        let src = r#"let _q = '"'; c.store(2, Ordering::Relaxed);"#;
        let code = &code_lines(src)[0];
        assert!(code.contains("Ordering::Relaxed"), "{code:?}");
    }

    #[test]
    fn raw_strings_mask_their_contents() {
        let src = r##"let _r = r#"// not a comment "quote" Mutex"#; lock();"##;
        let code = &code_lines(src)[0];
        assert!(!code.contains("Mutex"), "{code:?}");
        assert!(!code.contains("not a comment"), "{code:?}");
        assert!(
            code.contains("lock"),
            "code after the literal kept: {code:?}"
        );
        assert!(comment_lines(src)[0].is_empty(), "no comment seen");
    }

    #[test]
    fn nested_block_comments_are_comments_to_the_end() {
        let src = "/* outer /* inner Mutex */ still */ real_code();";
        let code = &code_lines(src)[0];
        assert!(!code.contains("Mutex"), "{code:?}");
        assert!(code.contains("real_code"), "{code:?}");
        assert!(comment_lines(src)[0].contains("inner Mutex"));
    }

    #[test]
    fn multi_line_block_comment_attributes_text_per_line() {
        let src = "a();\n/* one\n two Mutex\n three */ b();\nc();";
        let lx = lex(src);
        assert!(lx.comments[2].contains("two Mutex"));
        assert!(!lx.code[2].contains("Mutex"));
        assert!(lx.code[3].contains("b"));
    }

    #[test]
    fn line_comments_keep_their_marker_text() {
        let src = "x.load(o); // ordering: Relaxed — counter.";
        let lx = lex(src);
        assert!(lx.comments[0].contains("// ordering:"));
        assert!(lx.code[0].contains("x.load"));
        assert!(!lx.code[0].contains("ordering:"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x }";
        let lx = lex(src);
        assert!(lx.code[0].contains("str { x }"), "{:?}", lx.code[0]);
        let lifetimes = lx
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .count();
        assert_eq!(lifetimes, 3);
    }

    #[test]
    fn escaped_quote_chars_do_not_derail() {
        let src = r"let a = '\''; let b = '\\'; done();";
        let code = &code_lines(src)[0];
        assert!(code.contains("done"), "{code:?}");
    }

    #[test]
    fn byte_strings_mask_like_strings() {
        let src = r#"w.write(b"//raw bytes Mutex"); after();"#;
        let code = &code_lines(src)[0];
        assert!(!code.contains("Mutex"), "{code:?}");
        assert!(code.contains("after"), "{code:?}");
    }

    #[test]
    fn tokens_carry_idents_and_puncts_with_lines() {
        let src = "fn foo() {\n  bar.baz(1);\n}";
        let lx = lex(src);
        let idents: Vec<(&str, usize)> = lx
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| (t.text.as_str(), t.line))
            .collect();
        assert_eq!(idents, vec![("fn", 0), ("foo", 0), ("bar", 1), ("baz", 1)]);
    }

    #[test]
    fn unterminated_literals_do_not_loop_forever() {
        // Hostile/broken input must terminate (violations elsewhere will
        // surface through the normal rules).
        lex("let s = \"unterminated");
        lex("let c = '\\");
        lex("let r = r#\"unterminated");
        lex("/* unterminated");
    }
}
