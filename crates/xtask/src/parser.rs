//! Item parser for the static analyzer: extracts `fn` items (with
//! their enclosing `impl`/`trait` type), the call expressions inside
//! each body, and the index-expression sites, from the token stream the
//! lexer produces.
//!
//! This is deliberately not a full Rust parser.  It tracks exactly the
//! structure the call graph needs — brace nesting, `impl`/`trait`
//! headers, `fn` signatures, call forms (`f(..)`, `x.m(..)`,
//! `T::f(..)`, `m!(..)`, turbofish), and `expr[..]` index sites — and
//! is conservative everywhere else.  Soundness caveats are documented
//! in DESIGN.md § Static analysis.

use crate::lexer::{Lexed, Tok, TokKind};

/// How a call site is written; resolution differs per form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallKind {
    /// `f(..)` — a free function (or tuple-struct/variant constructor).
    Free,
    /// `x.m(..)` — receiver type unknown; resolves by simple name.
    Method,
    /// `Q::f(..)` — the last path qualifier (`Q`) is kept as a hint.
    Path(String),
    /// `m!(..)` — macros are pattern-matched, never resolved.
    Macro,
}

#[derive(Debug, Clone)]
pub struct Call {
    /// 0-based line of the call.
    pub line: usize,
    pub name: String,
    pub kind: CallKind,
}

/// One `fn` item with a body.
#[derive(Debug)]
pub struct FnItem {
    pub name: String,
    /// Enclosing `impl`/`trait` type, e.g. `IncomingBuffers`.
    pub impl_type: Option<String>,
    /// 0-based line of the `fn` keyword.
    pub sig_line: usize,
    /// 0-based inclusive line range of the body (opening to closing brace).
    pub body: (usize, usize),
    pub calls: Vec<Call>,
    /// 0-based lines of `expr[..]` index expressions (each can panic).
    pub index_sites: Vec<usize>,
}

impl FnItem {
    /// `Type::name` when inside an impl/trait, else the simple name.
    pub fn qualified(&self) -> String {
        match &self.impl_type {
            Some(t) => format!("{t}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// Keywords that look like call/index heads but are not.
const KEYWORDS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "extern", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub",
    "ref", "return", "static", "struct", "super", "trait", "type", "union", "unsafe", "use",
    "where", "while", "yield",
];

fn is_keyword(s: &str) -> bool {
    KEYWORDS.contains(&s)
}

/// What a pending `{` opens once the main walk reaches it.
enum Pending {
    Impl(String),
    Fn(usize),
}

/// Parse the token stream into `fn` items.  Tokens at or after
/// `test_cut` (0-based line) are ignored entirely — test modules sit at
/// the bottom of every module in this repo.
pub fn parse_fns(lexed: &Lexed, test_cut: usize) -> Vec<FnItem> {
    let toks: Vec<&Tok> = lexed.tokens.iter().filter(|t| t.line < test_cut).collect();
    let mut fns: Vec<FnItem> = Vec::new();
    // (type, depth inside the impl body)
    let mut impl_stack: Vec<(String, usize)> = Vec::new();
    // (fn index, depth inside the fn body)
    let mut fn_stack: Vec<(usize, usize)> = Vec::new();
    let mut pending: std::collections::HashMap<usize, Pending> = std::collections::HashMap::new();
    let mut depth = 0usize;

    let is_punct = |i: usize, c: &str| {
        toks.get(i)
            .is_some_and(|t| t.kind == TokKind::Punct && t.text == c)
    };
    let ident_at = |i: usize| {
        toks.get(i)
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
    };

    let mut i = 0usize;
    while i < toks.len() {
        let t = toks[i];
        match (t.kind, t.text.as_str()) {
            (TokKind::Punct, "{") => {
                depth += 1;
                match pending.remove(&i) {
                    Some(Pending::Impl(ty)) => impl_stack.push((ty, depth)),
                    Some(Pending::Fn(fi)) => fn_stack.push((fi, depth)),
                    None => {}
                }
            }
            (TokKind::Punct, "}") => {
                depth = depth.saturating_sub(1);
                while impl_stack.last().is_some_and(|(_, d)| *d > depth) {
                    impl_stack.pop();
                }
                while let Some(&(fi, d)) = fn_stack.last() {
                    if d > depth {
                        fns[fi].body.1 = t.line;
                        fn_stack.pop();
                    } else {
                        break;
                    }
                }
            }
            (TokKind::Ident, "impl") | (TokKind::Ident, "trait") => {
                if let Some((open, ty)) = scan_impl_header(&toks, i) {
                    pending.insert(open, Pending::Impl(ty));
                }
            }
            (TokKind::Ident, "fn") => {
                if let Some(name) = ident_at(i + 1) {
                    if let Some(open) = scan_fn_body_open(&toks, i + 2) {
                        let fi = fns.len();
                        fns.push(FnItem {
                            name: name.to_string(),
                            impl_type: impl_stack.last().map(|(t, _)| t.clone()),
                            sig_line: t.line,
                            body: (toks[open].line, toks[open].line),
                            calls: Vec::new(),
                            index_sites: Vec::new(),
                        });
                        pending.insert(open, Pending::Fn(fi));
                    }
                }
            }
            (TokKind::Ident, name) if !fn_stack.is_empty() && !is_keyword(name) => {
                // Skip the fn name in a nested `fn` definition (handled
                // above) — prev token `fn` means this ident is a def.
                let prev_is_fn = i > 0 && ident_at(i - 1) == Some("fn");
                if !prev_is_fn {
                    if let Some(call) = call_at(&toks, i) {
                        let fi = fn_stack.last().map(|&(fi, _)| fi);
                        if let Some(fi) = fi {
                            fns[fi].calls.push(call);
                        }
                    }
                }
            }
            (TokKind::Punct, "[") if !fn_stack.is_empty() => {
                // `expr[..]`: an index/slice site when the `[` follows a
                // value-producing token.  `#[attr]`, `let [a, b] = ..`,
                // array types `: [u8; 4]`, and `vec![..]` all have a
                // non-value token (or keyword) before the bracket.
                let indexes = match toks.get(i.wrapping_sub(1)) {
                    Some(p) if p.kind == TokKind::Ident => !is_keyword(&p.text),
                    Some(p) if p.kind == TokKind::Punct => p.text == ")" || p.text == "]",
                    _ => false,
                } && i > 0;
                if indexes {
                    if let Some(&(fi, _)) = fn_stack.last() {
                        fns[fi].index_sites.push(t.line);
                    }
                }
            }
            _ => {}
        }
        // `is_punct` kept for clarity of intent in scan helpers.
        let _ = &is_punct;
        i += 1;
    }
    // Close any frame still open at EOF.
    if let Some(last_line) = toks.last().map(|t| t.line) {
        for &(fi, _) in &fn_stack {
            fns[fi].body.1 = last_line;
        }
    }
    fns
}

/// From an `impl`/`trait` token, find the `{` that opens the body and
/// the type name: the last path segment before the brace, taken after
/// `for` when present (`impl Trait for Type`), skipping generics.
fn scan_impl_header(toks: &[&Tok], start: usize) -> Option<(usize, String)> {
    let mut angle = 0i32;
    let mut ty: Option<String> = None;
    let mut after_for = false;
    let mut j = start + 1;
    while j < toks.len() {
        let t = toks[j];
        match (t.kind, t.text.as_str()) {
            (TokKind::Punct, "<") if !arrow_at(toks, j) => angle += 1,
            (TokKind::Punct, ">") if !arrow_at(toks, j) => angle -= 1,
            (TokKind::Punct, "{") if angle <= 0 => {
                return ty.map(|ty| (j, ty));
            }
            (TokKind::Punct, ";") if angle <= 0 => return None,
            (TokKind::Ident, "for") if angle <= 0 => {
                after_for = true;
                ty = None;
            }
            (TokKind::Ident, "where") if angle <= 0 => {
                // Type is settled; keep scanning for the brace.
            }
            (TokKind::Ident, name) if angle <= 0 && !is_keyword(name) => {
                // Last path segment wins (`routing::IncomingBuffers`).
                let settled = ty.is_some() && !after_for;
                if !settled || after_for {
                    ty = Some(name.to_string());
                }
            }
            _ => {}
        }
        j += 1;
    }
    None
}

/// `>` (or `<`) that is part of a `->` arrow, not an angle bracket.
fn arrow_at(toks: &[&Tok], j: usize) -> bool {
    toks[j].text == ">" && j > 0 && toks[j - 1].kind == TokKind::Punct && toks[j - 1].text == "-"
}

/// From just past a fn name, find the `{` opening its body; `None` for
/// a bodyless trait-method declaration (`;` first).
fn scan_fn_body_open(toks: &[&Tok], start: usize) -> Option<usize> {
    let mut angle = 0i32;
    let mut j = start;
    while j < toks.len() {
        let t = toks[j];
        match (t.kind, t.text.as_str()) {
            (TokKind::Punct, "<") if !arrow_at(toks, j) => angle += 1,
            (TokKind::Punct, ">") if !arrow_at(toks, j) => angle -= 1,
            (TokKind::Punct, "{") if angle <= 0 => return Some(j),
            (TokKind::Punct, ";") if angle <= 0 => return None,
            _ => {}
        }
        j += 1;
    }
    None
}

/// Classify the ident at `i` as a call head, if it is one.
fn call_at(toks: &[&Tok], i: usize) -> Option<Call> {
    let t = toks[i];
    let next = |k: usize| toks.get(i + k);
    let punct =
        |k: usize, c: &str| next(k).is_some_and(|t| t.kind == TokKind::Punct && t.text == c);

    // `name!(..)` / `name![..]` / `name!{..}` — macro invocation.
    if punct(1, "!") && (punct(2, "(") || punct(2, "[") || punct(2, "{")) {
        return Some(Call {
            line: t.line,
            name: t.text.clone(),
            kind: CallKind::Macro,
        });
    }

    // `name::<..>(..)` — turbofish; skip the generics, require `(`.
    let paren_at = if punct(1, ":") && punct(2, ":") && punct(3, "<") {
        let mut angle = 0i32;
        let mut j = i + 3;
        loop {
            match toks.get(j) {
                Some(tk) if tk.kind == TokKind::Punct && tk.text == "<" && !arrow_at(toks, j) => {
                    angle += 1
                }
                Some(tk) if tk.kind == TokKind::Punct && tk.text == ">" && !arrow_at(toks, j) => {
                    angle -= 1;
                    if angle == 0 {
                        break j + 1;
                    }
                }
                Some(_) => {}
                None => return None,
            }
            j += 1;
        }
    } else {
        i + 1
    };
    if !toks
        .get(paren_at)
        .is_some_and(|t| t.kind == TokKind::Punct && t.text == "(")
    {
        return None;
    }

    // Classify by what precedes the name.
    let prev = |k: usize| i.checked_sub(k).and_then(|j| toks.get(j));
    let prev_punct =
        |k: usize, c: &str| prev(k).is_some_and(|t| t.kind == TokKind::Punct && t.text == c);

    let kind = if prev_punct(1, ".") {
        CallKind::Method
    } else if prev_punct(1, ":") && prev_punct(2, ":") {
        match prev(3) {
            Some(q) if q.kind == TokKind::Ident && !is_keyword(&q.text) => {
                CallKind::Path(q.text.clone())
            }
            Some(q) if q.kind == TokKind::Ident && (q.text == "Self" || q.text == "self") => {
                CallKind::Path(q.text.clone())
            }
            _ => CallKind::Path(String::new()), // `<T as Trait>::f(..)` etc.
        }
    } else {
        CallKind::Free
    };
    Some(Call {
        line: t.line,
        name: t.text.clone(),
        kind,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> Vec<FnItem> {
        parse_fns(&lex(src), usize::MAX)
    }

    #[test]
    fn extracts_fns_with_impl_types() {
        let src = "
impl IncomingBuffers {
    pub fn write(&self, data: &[u8]) -> Result<(), Full> {
        self.reserve(data.len())
    }
}
fn free_helper() {}
impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        helper()
    }
}
trait Sink {
    fn push_frame(&self);
    fn flush(&self) {
        noop()
    }
}";
        let fns = parse(src);
        let quals: Vec<String> = fns.iter().map(|f| f.qualified()).collect();
        assert_eq!(
            quals,
            vec![
                "IncomingBuffers::write",
                "free_helper",
                "Violation::fmt",
                "Sink::flush",
            ]
        );
    }

    #[test]
    fn extracts_call_kinds() {
        let src = "
fn caller() {
    free_fn(1);
    recv.method_call(2);
    Admission::admit(3);
    Self::helper();
    iter.collect::<Vec<_>>();
    panic!(\"boom\");
    let v = vec![1, 2];
}";
        let fns = parse(src);
        let calls = &fns[0].calls;
        let find = |n: &str| {
            calls
                .iter()
                .find(|c| c.name == n)
                .unwrap_or_else(|| panic!("{n}"))
        };
        assert_eq!(find("free_fn").kind, CallKind::Free);
        assert_eq!(find("method_call").kind, CallKind::Method);
        assert_eq!(find("admit").kind, CallKind::Path("Admission".into()));
        assert_eq!(find("helper").kind, CallKind::Path("Self".into()));
        assert_eq!(find("collect").kind, CallKind::Method);
        assert_eq!(find("panic").kind, CallKind::Macro);
        assert_eq!(find("vec").kind, CallKind::Macro);
    }

    #[test]
    fn index_sites_fire_on_expressions_not_types_or_attrs() {
        let src = "
fn f(xs: &[u8], m: &Map) -> u8 {
    #[allow(dead_code)]
    let t: [u8; 4] = [0; 4];
    let [a, _b] = [1u8, 2];
    let x = xs[0];
    let y = m.rows()[1];
    let z = &xs[1..3];
    a + x + y + z[0]
}";
        let fns = parse(src);
        // xs[0], rows()[1], xs[1..3], z[0] — not the type, array literal,
        // pattern, or attribute brackets.
        assert_eq!(fns[0].index_sites.len(), 4, "{:?}", fns[0].index_sites);
    }

    #[test]
    fn nested_fns_attribute_calls_to_the_innermost() {
        let src = "
fn outer() {
    inner_call();
    fn nested() {
        deep_call();
    }
    after_nested();
}";
        let fns = parse(src);
        let outer = fns.iter().find(|f| f.name == "outer").unwrap();
        let nested = fns.iter().find(|f| f.name == "nested").unwrap();
        let names = |f: &FnItem| f.calls.iter().map(|c| c.name.clone()).collect::<Vec<_>>();
        assert_eq!(names(outer), vec!["inner_call", "after_nested"]);
        assert_eq!(names(nested), vec!["deep_call"]);
    }

    #[test]
    fn test_modules_are_excluded() {
        let src = "
fn real() { a(); }
#[cfg(test)]
mod tests {
    fn test_only() { b(); }
}";
        let lexed = lex(src);
        let cut = src
            .lines()
            .position(|l| l.starts_with("#[cfg(test)]"))
            .unwrap();
        let fns = parse_fns(&lexed, cut);
        assert_eq!(fns.len(), 1);
        assert_eq!(fns[0].name, "real");
    }

    #[test]
    fn struct_literals_and_comparisons_are_not_calls() {
        let src = "
fn f(a: usize, b: usize) -> Foo {
    if a != b { marker() }
    Foo { field: a }
}";
        let fns = parse(src);
        let names: Vec<String> = fns[0].calls.iter().map(|c| c.name.clone()).collect();
        assert_eq!(names, vec!["marker"]);
    }

    #[test]
    fn body_line_ranges_cover_the_braces() {
        let src = "fn f() {\n  a();\n  b();\n}\nfn g() { c(); }";
        let fns = parse(src);
        assert_eq!(fns[0].body, (0, 3));
        assert_eq!(fns[1].body, (4, 4));
    }
}
