//! Conservative intra-workspace call graph.
//!
//! Resolution is name-based: a method call `x.m(..)` resolves to
//! *every* workspace `fn m`; a qualified call `T::f(..)` resolves to
//! the exact `impl T` item when one exists, falling back to every
//! *free* `fn f` otherwise (so `module::helper(..)` still resolves,
//! but `Vec::new(..)` does not fan out to every workspace method named
//! `new`); `Self::f(..)` resolves through the enclosing impl type.
//! That over-approximates the real dispatch (no type inference, no
//! trait resolution), which is the safe direction for the rules
//! built on top: a violation in any *possibly* reached function is
//! flagged, and reviewed boundaries are cut explicitly with
//! `// HOT-PATH-CUT:` annotations rather than silently missed.
//!
//! Known under-approximations (documented in DESIGN.md): calls through
//! function pointers/closures passed as values are not edges, and
//! macro-generated calls are invisible.

use std::collections::{HashMap, HashSet, VecDeque};

use crate::parser::{CallKind, FnItem};

/// A function's position in the workspace: (file index, fn index).
pub type FnId = (usize, usize);

/// Per-function annotation state, read from the comment block directly
/// above the signature.
#[derive(Debug, Default, Clone)]
pub struct FnMarks {
    /// `// HOT-PATH-ROOT: reason` — reachability starts here.
    pub root: bool,
    /// `// HOT-PATH-CUT: reason` — reviewed boundary; the function and
    /// everything only reachable through it are out of scope.
    pub cut: bool,
    /// `// ALLOC-OK(fn): reason` — every allocation site in the body is
    /// blessed at once (amortized/warm-up allocation, reviewed).
    pub alloc_ok_fn: bool,
}

pub struct Graph<'a> {
    /// Parallel to the caller's file list.
    pub fns: Vec<Vec<&'a FnItem>>,
    pub marks: Vec<Vec<FnMarks>>,
    by_name: HashMap<&'a str, Vec<FnId>>,
    by_qual: HashMap<String, Vec<FnId>>,
    free_by_name: HashMap<&'a str, Vec<FnId>>,
}

impl<'a> Graph<'a> {
    /// Build the resolution index.  `fns[f][i]` is fn `i` of file `f`;
    /// `marks` must be parallel.
    pub fn new(fns: Vec<Vec<&'a FnItem>>, marks: Vec<Vec<FnMarks>>) -> Self {
        let mut by_name: HashMap<&str, Vec<FnId>> = HashMap::new();
        let mut by_qual: HashMap<String, Vec<FnId>> = HashMap::new();
        let mut free_by_name: HashMap<&str, Vec<FnId>> = HashMap::new();
        for (f, file_fns) in fns.iter().enumerate() {
            for (i, item) in file_fns.iter().enumerate() {
                by_name.entry(&item.name).or_default().push((f, i));
                by_qual.entry(item.qualified()).or_default().push((f, i));
                if item.impl_type.is_none() {
                    free_by_name.entry(&item.name).or_default().push((f, i));
                }
            }
        }
        Graph {
            fns,
            marks,
            by_name,
            by_qual,
            free_by_name,
        }
    }

    pub fn item(&self, id: FnId) -> &'a FnItem {
        self.fns[id.0][id.1]
    }

    pub fn marks_of(&self, id: FnId) -> &FnMarks {
        &self.marks[id.0][id.1]
    }

    /// All functions a call may dispatch to, conservatively.
    pub fn resolve(&self, call_kind: &CallKind, name: &str, current_impl: Option<&str>) -> &[FnId] {
        static EMPTY: [FnId; 0] = [];
        match call_kind {
            CallKind::Macro => &EMPTY,
            CallKind::Path(q) if q == "Self" || q == "self" => {
                // `Self::f` is always an associated fn of the enclosing
                // impl: exact match or unresolved (macro-generated items
                // are invisible to the parser; fanning out by bare name
                // would be wildly imprecise for `new`/`default`).
                if let Some(t) = current_impl {
                    if let Some(ids) = self.by_qual.get(&format!("{t}::{name}")) {
                        return ids;
                    }
                }
                &EMPTY
            }
            CallKind::Path(q) if !q.is_empty() => {
                if let Some(ids) = self.by_qual.get(&format!("{q}::{name}")) {
                    return ids;
                }
                // Unknown qualifier: a module path (`kernel::probe(..)`)
                // may still name a workspace free function, but an
                // external type (`Vec::new(..)`) must NOT fan out to
                // every workspace method of that name — associated fns
                // only resolve through the exact `T::f` entry above.
                self.free_by_name
                    .get(name)
                    .map_or(&EMPTY[..], Vec::as_slice)
            }
            _ => self.by_name.get(name).map_or(&EMPTY[..], Vec::as_slice),
        }
    }

    /// Every function annotated `HOT-PATH-ROOT`.
    pub fn roots(&self) -> Vec<FnId> {
        let mut out = Vec::new();
        for (f, file_marks) in self.marks.iter().enumerate() {
            for (i, m) in file_marks.iter().enumerate() {
                if m.root {
                    out.push((f, i));
                }
            }
        }
        out
    }

    /// BFS from the roots.  Cut functions terminate descent: they are
    /// returned in the second set (so the caller can report the
    /// boundary) but their bodies are neither scanned nor traversed.
    pub fn reachable(&self) -> (Vec<FnId>, HashSet<FnId>) {
        let mut seen: HashSet<FnId> = HashSet::new();
        let mut cuts: HashSet<FnId> = HashSet::new();
        let mut order: Vec<FnId> = Vec::new();
        let mut queue: VecDeque<FnId> = VecDeque::new();
        for r in self.roots() {
            if seen.insert(r) {
                queue.push_back(r);
            }
        }
        while let Some(id) = queue.pop_front() {
            if self.marks_of(id).cut {
                cuts.insert(id);
                continue;
            }
            order.push(id);
            let item = self.item(id);
            for call in &item.calls {
                for &callee in self.resolve(&call.kind, &call.name, item.impl_type.as_deref()) {
                    if seen.insert(callee) {
                        queue.push_back(callee);
                    }
                }
            }
        }
        (order, cuts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse_fns;

    fn build(srcs: &[&str]) -> (Vec<Vec<FnItem>>, Vec<Vec<FnMarks>>) {
        let mut fns = Vec::new();
        let mut marks = Vec::new();
        for src in srcs {
            let parsed = parse_fns(&lex(src), usize::MAX);
            let m: Vec<FnMarks> = parsed
                .iter()
                .map(|f| FnMarks {
                    root: f.name.starts_with("root_"),
                    cut: f.name.starts_with("cut_"),
                    alloc_ok_fn: false,
                })
                .collect();
            fns.push(parsed);
            marks.push(m);
        }
        (fns, marks)
    }

    fn graph<'a>(fns: &'a [Vec<FnItem>], marks: &[Vec<FnMarks>]) -> Graph<'a> {
        Graph::new(
            fns.iter().map(|v| v.iter().collect()).collect(),
            marks.to_vec(),
        )
    }

    #[test]
    fn reaches_transitively_across_files() {
        let (fns, marks) = build(&[
            "fn root_a() { helper(); }",
            "fn helper() { deep(); }\nfn deep() {}\nfn unrelated() {}",
        ]);
        let g = graph(&fns, &marks);
        let (order, _) = g.reachable();
        let names: Vec<&str> = order.iter().map(|&id| g.item(id).name.as_str()).collect();
        assert!(names.contains(&"root_a"));
        assert!(names.contains(&"helper"));
        assert!(names.contains(&"deep"));
        assert!(!names.contains(&"unrelated"));
    }

    #[test]
    fn qualified_calls_resolve_exactly_when_the_impl_exists() {
        let (fns, marks) = build(&[
            "fn root_a() { Target::hit(); }",
            "impl Target { fn hit(&self) { inner(); } }\n\
             impl Other { fn hit(&self) { other_inner(); } }\n\
             fn inner() {}\nfn other_inner() {}",
        ]);
        let g = graph(&fns, &marks);
        let (order, _) = g.reachable();
        let names: Vec<&str> = order.iter().map(|&id| g.item(id).name.as_str()).collect();
        assert!(names.contains(&"inner"));
        // Exact qualified resolution must NOT pull in Other::hit.
        assert!(!names.contains(&"other_inner"), "{names:?}");
    }

    #[test]
    fn method_calls_resolve_to_every_name_match() {
        let (fns, marks) = build(&[
            "fn root_a(x: &Thing) { x.poke(); }",
            "impl A { fn poke(&self) { a_inner(); } }\nfn a_inner() {}",
            "impl B { fn poke(&self) { b_inner(); } }\nfn b_inner() {}",
        ]);
        let g = graph(&fns, &marks);
        let (order, _) = g.reachable();
        let names: Vec<&str> = order.iter().map(|&id| g.item(id).name.as_str()).collect();
        assert!(names.contains(&"a_inner") && names.contains(&"b_inner"));
    }

    #[test]
    fn self_calls_resolve_through_the_enclosing_impl() {
        let (fns, marks) = build(&[
            "impl W {\n fn root_go(&self) { Self::local(); }\n fn local() { w_inner(); }\n}\n\
             impl V { fn local() { v_inner(); } }\nfn w_inner() {}\nfn v_inner() {}",
        ]);
        let g = graph(&fns, &marks);
        let (order, _) = g.reachable();
        let names: Vec<&str> = order.iter().map(|&id| g.item(id).name.as_str()).collect();
        assert!(names.contains(&"w_inner"));
        assert!(!names.contains(&"v_inner"), "{names:?}");
    }

    #[test]
    fn unknown_qualifiers_resolve_to_free_fns_but_never_to_methods() {
        let (fns, marks) = build(&[
            "fn root_a() { Vec::new(); kernel::probe(); }",
            "impl Engine { fn new() { engine_inner(); } }\nfn engine_inner() {}\n\
             fn probe() { probe_inner(); }\nfn probe_inner() {}",
        ]);
        let g = graph(&fns, &marks);
        let (order, _) = g.reachable();
        let names: Vec<&str> = order.iter().map(|&id| g.item(id).name.as_str()).collect();
        // `Vec::new` is an external associated fn: it must not fan out
        // to the workspace method `Engine::new`.
        assert!(!names.contains(&"engine_inner"), "{names:?}");
        // `kernel::probe` is a module-qualified free fn: it resolves.
        assert!(names.contains(&"probe_inner"), "{names:?}");
    }

    #[test]
    fn cuts_stop_descent_and_are_reported() {
        let (fns, marks) = build(&[
            "fn root_a() { cut_boundary(); straight(); }",
            "fn cut_boundary() { beyond(); }\nfn beyond() {}\nfn straight() {}",
        ]);
        let g = graph(&fns, &marks);
        let (order, cuts) = g.reachable();
        let names: Vec<&str> = order.iter().map(|&id| g.item(id).name.as_str()).collect();
        assert!(names.contains(&"straight"));
        assert!(!names.contains(&"cut_boundary"), "cut body not scanned");
        assert!(!names.contains(&"beyond"), "descent stopped at the cut");
        assert_eq!(cuts.len(), 1);
    }
}
