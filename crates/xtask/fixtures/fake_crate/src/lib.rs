//! Self-check fixture: a crate with unsafe code whose `lib.rs` lacks
//! `#![deny(unsafe_op_in_unsafe_fn)]` — R5 must flag the crate, and the
//! un-allowlisted unsafe line itself draws R3.

// seed: R3 — unsafe outside the allowlist.
// seed: R5 — crate has unsafe code but no deny attribute.
pub unsafe fn raw_read(p: *const u8) -> u8 {
    *p
}
