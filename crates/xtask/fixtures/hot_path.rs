//! Seeded violations for `cargo xtask lint --self-check`.
//!
//! This file plays a hot-path, unsafe-allowlisted, eris-sync-ported
//! module.  Each `// seed: R<N>` line declares one violation the linter
//! must report; compliant examples sit alongside to prove the rules
//! don't over-fire.  The file is never compiled.

// seed: R4 — a ported module reaching for std primitives directly.
use std::sync::atomic::AtomicU64;

// A compliant ordering site: the comment below satisfies R1.
// ordering: Relaxed — fixture counter, carries no payload.
pub fn compliant_ordering(c: &AtomicU64) {
    c.load(Ordering::Relaxed);
}

// Padding so the compliant justification comment above falls out of
// the lookback window of the seeded violation below.
//
//
//
//
//

// seed: R1 — an ordering choice with no justifying comment in range.
pub fn unjustified_ordering(c: &AtomicU64) {
    c.store(1, Ordering::Relaxed);
}

// seed: R2 — a lock on a latch-free path, not allowlisted.
pub fn locked() {
    let _guard = Mutex::new(());
}

// seed: R3 — allowlisted file, but the unsafe block is not argued.
pub fn unargued() {
    let _ = unsafe { core::ptr::null::<u8>().read() };
}

// A compliant unsafe block: the SAFETY comment below satisfies R3.
pub fn argued() {
    // SAFETY: fixture; reads a dangling-but-aligned pointer nowhere.
    let _ = unsafe { core::ptr::NonNull::<u8>::dangling().as_ptr() };
}

// ---- lexer regression seeds: these only count correctly with the ----
// ---- real lexer; the old `code_of` stripper missed or over-fired ----
// ---- on every one of them. ----

// seed: R2 — the `//` inside the URL string must not hide the lock
// after it (the old stripper truncated the line at the first `//`).
pub fn url_lock() {
    let _x = ("https://eris.example/metrics", Mutex::new(()));
}

// seed: R1 — the '"' char literal must not open a phantom string that
// swallows the rest of the line.
pub fn quote_char(c: &AtomicU64) {
    let _sep = '"'; c.store(2, Ordering::Relaxed);
}

// seed: R1 — raw-string contents must be masked, not read as code or
// comment.
pub fn raw_string(c: &AtomicU64) {
    let _q = r#"// not a comment, "quotes" inside"#; c.store(3, Ordering::Relaxed);
}

// A compliant line: the old per-line stripper never removed block
// comments, so the word inside the one below used to over-fire R2.
pub fn block_comment_control() {
    let _n = 1; /* not a real Mutex, just prose */
}

// seed: R3 — a justification marker smuggled inside a string is not a
// comment; only real comment text satisfies the lookback search.
pub fn smuggled_marker() {
    let _fake = "// SAFETY: not a real justification";
    let _ = unsafe { core::ptr::null::<u8>().read() };
}
