//! Seeded violations for `cargo xtask lint --self-check`.
//!
//! This file plays a hot-path, unsafe-allowlisted, eris-sync-ported
//! module.  Each `// seed: R<N>` line declares one violation the linter
//! must report; compliant examples sit alongside to prove the rules
//! don't over-fire.  The file is never compiled.

// seed: R4 — a ported module reaching for std primitives directly.
use std::sync::atomic::AtomicU64;

// A compliant ordering site: the comment below satisfies R1.
// ordering: Relaxed — fixture counter, carries no payload.
pub fn compliant_ordering(c: &AtomicU64) {
    c.load(Ordering::Relaxed);
}

// Padding so the compliant justification comment above falls out of
// the lookback window of the seeded violation below.
//
//
//
//
//

// seed: R1 — an ordering choice with no justifying comment in range.
pub fn unjustified_ordering(c: &AtomicU64) {
    c.store(1, Ordering::Relaxed);
}

// seed: R2 — a lock on a latch-free path, not allowlisted.
pub fn locked() {
    let _guard = Mutex::new(());
}

// seed: R3 — allowlisted file, but the unsafe block is not argued.
pub fn unargued() {
    let _ = unsafe { core::ptr::null::<u8>().read() };
}

// A compliant unsafe block: the SAFETY comment below satisfies R3.
pub fn argued() {
    // SAFETY: fixture; reads a dangling-but-aligned pointer nowhere.
    let _ = unsafe { core::ptr::NonNull::<u8>::dangling().as_ptr() };
}
