//! Self-check fixture for a module *off* the hot path and *outside*
//! the unsafe allowlist.  Hot-path-only rules must stay quiet here;
//! unsafe must still be flagged.

// Ordering without a comment is fine off the hot path (no R1)...
pub fn relaxed_probe(c: &AtomicU64) -> u64 {
    c.load(Ordering::Relaxed)
}

// ...and so is a lock (no R2).
pub fn with_lock() {
    let _guard = Mutex::new(());
}

// seed: R3 — unsafe in a file that is not on the allowlist.
pub fn sneaky() {
    let _ = unsafe { core::ptr::null::<u8>().read() };
}
