//! Analyzer self-check fixture (A1/A2/A4): seeded violations reachable
//! from a fixture root, plus negative controls that must stay silent.
//! Never compiled — scanned only by `cargo xtask analyze --self-check`.
//! The `// seed: A<N>` lines are the manifest of expected violations;
//! exact-count matching means an over-firing rule fails the self-check
//! just like a dead one.

// HOT-PATH-ROOT: fixture root — analyzer reachability starts here.
pub fn root_dispatch(xs: &[u8], q: &mut Queue) -> u8 {
    let head = first_or_die(xs);
    stage_two(q);
    noisy_macro(head == 0);
    cut_refill(q);
    let a = justified(xs, head as usize);
    bulk_setup(&mut q.rows);
    let scratch = make_scratch();
    // seed: A1 — index expression without a BOUNDS justification.
    let tail = xs[xs.len() - 1];
    head ^ tail ^ a ^ scratch
}

fn first_or_die(xs: &[u8]) -> u8 {
    // seed: A1 — transitive unwrap, two hops below the root.
    *xs.first().unwrap()
}

fn stage_two(q: &mut Queue) {
    // seed: A2 — Vec::push with no ALLOC-OK justification.
    q.items.push(0u64);
    blocked_leaf();
}

fn noisy_macro(flag: bool) {
    if flag {
        // seed: A1 — panicking macro reachable from the root.
        panic!("fixture panic");
    }
}

fn blocked_leaf() {
    // seed: A4 — lock acquisition on a latch-free path.
    let _g = FIXTURE_LOCK.lock();
    // seed: A4 — blocking sleep on a latch-free path.
    std::thread::sleep(core::time::Duration::from_millis(1));
}

fn make_scratch() -> u8 {
    // seed: A2 — allocating macro reachable from the root.
    let v = vec![0u8; 4];
    // BOUNDS: v always has four elements, built on the line above.
    v[0]
}

/// Unreachable from any root: the unwrap here must NOT be flagged — if
/// the analyzer scans it, the A1 exact count breaks.
pub fn cold_helper(xs: &[u8]) -> u8 {
    *xs.first().unwrap()
}

// HOT-PATH-CUT: reviewed boundary — amortized refill off the epoch
// loop; the reserve below must NOT be flagged.
fn cut_refill(q: &mut Queue) {
    q.items.reserve(128);
    beyond_the_cut();
}

/// Only reachable through the cut: must NOT be scanned.
fn beyond_the_cut() {
    panic!("never flagged");
}

fn justified(xs: &[u8], n: usize) -> u8 {
    // BOUNDS: n is masked to the table size on the line below.
    let a = xs[n & 3];
    // ALLOC-OK: warm-up slab registration, once per epoch.
    SCRATCH.push(a);
    a
}

// ALLOC-OK(fn): builds the per-epoch scratch tables; reviewed
// amortized allocation, every site in this body is blessed at once.
fn bulk_setup(rows: &mut Vec<u64>) {
    rows.push(1);
    rows.extend_from_slice(&[2, 3]);
    let _s = format!("fixture {}", rows.len());
}
