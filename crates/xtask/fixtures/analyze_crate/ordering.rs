//! Analyzer self-check fixture (A3): ordering-pairing audit seeds.
//! Never compiled — scanned only by `cargo xtask analyze --self-check`.
//!
//! The compliant pair below must stay silent; the two seeded release
//! sites (one unlabeled, one with a dangling label) must each fire
//! exactly once.  Padding comments keep each site's lookback window
//! free of the other sites' `pairs-with:` labels.

pub fn publish(slot: &AtomicU64, val: u64) {
    // ordering: Release publishes the payload; pairs-with: fixture-slot-seq.
    slot.store(val, Ordering::Release);
}

pub fn consume(slot: &AtomicU64) -> u64 {
    // ordering: Acquire observes the published payload; pairs-with: fixture-slot-seq.
    slot.load(Ordering::Acquire)
}

// ---- padding: keep the labeled comments above out of the next ----
// ---- site's lookback window (ten lines of separation). ----
// ---- padding ----
// ---- padding ----
// ---- padding ----
// ---- padding ----
// ---- padding ----
// ---- padding ----
// ---- padding ----
// ---- padding ----

pub fn unlabeled_release(slot: &AtomicU64) {
    // ordering: Release hand-off, deliberately missing its pair label.
    // seed: A3 — release-side ordering without a pairs-with label.
    slot.store(7, Ordering::Release);
}

// ---- padding ----
// ---- padding ----
// ---- padding ----
// ---- padding ----
// ---- padding ----
// ---- padding ----
// ---- padding ----
// ---- padding ----
// ---- padding ----
// ---- padding ----

pub fn dangling_release(slot: &AtomicU64) {
    // ordering: Release; pairs-with: fixture-missing-acquire.
    // seed: A3 — the named acquire end does not exist in this file.
    slot.store(9, Ordering::Release);
}
