//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace uses: the `proptest!` macro,
//! range/tuple/collection strategies, `prop_map`/`prop_flat_map`,
//! `Just`, `any::<T>()`, `prop_oneof!`, `proptest::bool::ANY`, and the
//! `prop_assert*` macros.
//!
//! Differences from real proptest, deliberate for an offline shim:
//! - no shrinking — a failing case reports the drawn values via the
//!   panic message of the underlying `assert!`;
//! - deterministic seeding per (test name, case index), so failures
//!   reproduce exactly on re-run;
//! - `prop_assert*` are plain `assert*` (panic instead of early-return
//!   rejection), which is equivalent for passing suites.

pub mod test_runner {
    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Real proptest defaults to 256; 64 keeps this suite quick
            // while still exploring the space. Tests that want more set
            // `with_cases` explicitly.
            ProptestConfig { cases: 64 }
        }
    }

    /// xoshiro256++ seeded from (test path, case index) so every case is
    /// deterministic and independent.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl TestRng {
        pub fn for_case(test_path: &str, case: u32) -> Self {
            // FNV-1a over the test path, mixed with the case index.
            let mut h: u64 = 0xCBF2_9CE4_8422_2325;
            for b in test_path.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            let mut sm = h ^ ((case as u64) << 32 | 0x5DEE_CE66);
            TestRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }

        #[inline]
        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        /// Uniform draw in `[0, n)`; `n` must be nonzero.
        #[inline]
        pub fn below(&mut self, n: u64) -> u64 {
            self.next_u64() % n
        }

        /// Uniform draw in `[0, 1)`.
        #[inline]
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;

    /// A recipe for generating random values of `Self::Value`.
    pub trait Strategy {
        type Value;

        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { base: self, f }
        }

        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { base: self, f }
        }
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        pub(crate) base: S,
        pub(crate) f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.base.new_value(rng))
        }
    }

    pub struct FlatMap<S, F> {
        pub(crate) base: S,
        pub(crate) f: F,
    }

    impl<S, F, S2> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;

        fn new_value(&self, rng: &mut TestRng) -> S2::Value {
            let inner = (self.f)(self.base.new_value(rng));
            inner.new_value(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;

        fn new_value(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty strategy range");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident),+)),+ $(,)?) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($s,)+) = self;
                    ($($s.new_value(rng),)+)
                }
            }
        )+};
    }

    tuple_strategy!(
        (A),
        (A, B),
        (A, B, C),
        (A, B, C, D),
        (A, B, C, D, E),
        (A, B, C, D, E, F)
    );

    /// Uniform choice between boxed strategies of one value type — the
    /// backing store of the [`prop_oneof!`](crate::prop_oneof) macro.
    pub struct Union<V> {
        pub options: Vec<Box<dyn Strategy<Value = V>>>,
    }

    impl<V> Strategy for Union<V> {
        type Value = V;

        fn new_value(&self, rng: &mut TestRng) -> V {
            assert!(!self.options.is_empty(), "empty prop_oneof");
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].new_value(rng)
        }
    }
}

pub mod arbitrary {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Types with a canonical full-domain strategy (`any::<T>()`).
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    pub struct AnyStrategy<T>(core::marker::PhantomData<T>);

    /// Full-domain strategy for `T` — unlike real proptest there is no
    /// edge-case bias, so pair it with explicit `Just(T::MAX)`-style
    /// alternatives in a `prop_oneof!` when boundaries matter.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(core::marker::PhantomData)
    }

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::collections::BTreeSet;

    /// Element-count bound for collection strategies (half-open).
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl SizeRange {
        fn draw(&self, rng: &mut TestRng) -> usize {
            if self.hi <= self.lo + 1 {
                self.lo
            } else {
                self.lo + rng.below((self.hi - self.lo) as u64) as usize
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.draw(rng);
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }

    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let n = self.size.draw(rng);
            let mut out = BTreeSet::new();
            // Duplicates shrink the set, so over-draw within reason; real
            // proptest retries similarly. Callers keep domains much larger
            // than the requested size.
            let mut attempts = 0usize;
            while out.len() < n && attempts < n.saturating_mul(20) + 32 {
                out.insert(self.element.new_value(rng));
                attempts += 1;
            }
            out
        }
    }
}

pub mod bool {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    #[derive(Clone, Copy, Debug)]
    pub struct BoolStrategy;

    /// Uniformly random booleans.
    pub const ANY: BoolStrategy = BoolStrategy;

    impl Strategy for BoolStrategy {
        type Value = bool;

        fn new_value(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod prelude {
    pub use super::arbitrary::{any, Arbitrary};
    pub use super::strategy::{Just, Strategy};
    pub use super::test_runner::ProptestConfig;
    pub use super::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Uniformly choose one of several strategies producing the same value
/// type.  Unweighted only — the subset this workspace uses.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {{
        let options: Vec<Box<dyn $crate::strategy::Strategy<Value = _>>> =
            vec![$(Box::new($strat)),+];
        $crate::strategy::Union { options }
    }};
}

/// The property-test macro: declares `#[test]` functions whose arguments
/// are drawn from strategies for `cases` iterations.
#[macro_export]
macro_rules! proptest {
    { #![proptest_config($cfg:expr)] $($rest:tt)* } => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    { $($rest:tt)* } => {
        $crate::__proptest_fns! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    { ($cfg:expr) } => {};
    { ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident($($bind:pat in $strat:expr),+ $(,)?) $body:block
      $($rest:tt)*
    } => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                $(
                    let $bind =
                        $crate::strategy::Strategy::new_value(&($strat), &mut __rng);
                )+
                $body
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_tuples_and_collections_respect_bounds() {
        let mut rng = TestRng::for_case("shim::bounds", 0);
        for _ in 0..2000 {
            let v = (3u64..9).new_value(&mut rng);
            assert!((3..9).contains(&v));
            let (a, b, c) = (0u8..4, 10u64..20, 0f64..1.0).new_value(&mut rng);
            assert!(a < 4 && (10..20).contains(&b) && (0.0..1.0).contains(&c));
            let xs = crate::collection::vec(0u32..5, 2..6).new_value(&mut rng);
            assert!((2..6).contains(&xs.len()));
            assert!(xs.iter().all(|x| *x < 5));
            let set = crate::collection::btree_set(0u64..1000, 1..10).new_value(&mut rng);
            assert!(!set.is_empty() && set.len() < 10);
        }
    }

    #[test]
    fn flat_map_and_just_compose() {
        let strat = (2usize..8).prop_flat_map(|n| (Just(n), crate::collection::vec(0u64..100, n)));
        let mut rng = TestRng::for_case("shim::flat_map", 1);
        for _ in 0..500 {
            let (n, xs) = strat.new_value(&mut rng);
            assert_eq!(xs.len(), n);
        }
    }

    #[test]
    fn deterministic_per_case() {
        let mut a = TestRng::for_case("shim::det", 7);
        let mut b = TestRng::for_case("shim::det", 7);
        let mut c = TestRng::for_case("shim::det", 8);
        let (xa, xb, xc) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(xa, xb);
        assert_ne!(xa, xc);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: doc comments, config, multiple args,
        /// tuple patterns, and trailing rest all parse.
        #[test]
        fn macro_accepts_the_full_grammar(
            xs in crate::collection::vec(0u64..50, 0..20),
            (lo, hi) in (0u64..10, 10u64..20),
            flag in crate::bool::ANY,
        ) {
            prop_assert!(lo < hi);
            prop_assert_eq!(xs.iter().filter(|&&x| x >= 50).count(), 0);
            prop_assert_ne!(hi, 0, "hi drawn from 10..20, flag={}", flag);
        }

        #[test]
        fn second_fn_in_same_block(n in 1usize..5) {
            prop_assert!((1..5).contains(&n));
        }

        #[test]
        fn oneof_and_any_compose(
            v in prop_oneof![Just(u64::MAX), crate::arbitrary::any::<u64>(), 0u64..10],
            w in crate::arbitrary::any::<u32>().prop_map(|x| x as u64),
        ) {
            prop_assert_ne!(v, v.wrapping_add(1));
            prop_assert!(w <= u32::MAX as u64);
        }
    }

    #[test]
    fn oneof_eventually_draws_every_arm() {
        let strat = crate::prop_oneof![Just(1u64), Just(2u64), Just(3u64)];
        let mut rng = TestRng::for_case("shim::oneof", 0);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[(strat.new_value(&mut rng) - 1) as usize] = true;
        }
        assert_eq!(seen, [true; 3]);
    }
}
