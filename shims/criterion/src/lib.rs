//! Offline stand-in for the `criterion` crate: a minimal benchmark
//! harness with criterion's API shape. It runs each benchmark for a
//! short, fixed time budget and prints one `name ... median/iter` line —
//! no statistics, plots, or baselines. Under `--test` (as passed by
//! `cargo test --benches`) every routine runs exactly once so suites
//! stay fast.

pub use std::hint::black_box;

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Per-iteration timing collected by one `Bencher` run.
#[derive(Clone, Copy, Debug, Default)]
struct Measurement {
    total: Duration,
    iters: u64,
}

impl Measurement {
    fn per_iter_ns(&self) -> f64 {
        if self.iters == 0 {
            0.0
        } else {
            self.total.as_nanos() as f64 / self.iters as f64
        }
    }
}

/// How `iter_batched` amortizes setup; only the routine is timed here,
/// so the variants behave identically.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Identifier for a parameterized benchmark: `group/function/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

pub struct Bencher {
    budget: Duration,
    test_mode: bool,
    measurement: Measurement,
}

impl Bencher {
    /// Pick an iteration count that roughly fills the time budget.
    fn plan_iters(&self, probe_ns: f64) -> u64 {
        if self.test_mode {
            return 1;
        }
        let budget_ns = self.budget.as_nanos() as f64;
        (budget_ns / probe_ns.max(1.0)).clamp(1.0, 1_000_000.0) as u64
    }

    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let probe = Instant::now();
        black_box(routine());
        let iters = self.plan_iters(probe.elapsed().as_nanos() as f64);
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.measurement = Measurement {
            total: start.elapsed() + probe.elapsed(),
            iters: iters + 1,
        };
    }

    /// The routine times itself over `iters` iterations (used when setup
    /// such as spawning threads must sit outside the timed region).
    pub fn iter_custom<F: FnMut(u64) -> Duration>(&mut self, mut routine: F) {
        let iters = if self.test_mode { 1 } else { 100 };
        let total = routine(iters);
        self.measurement = Measurement { total, iters };
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let iters = if self.test_mode { 1 } else { 10 };
        let mut total = Duration::ZERO;
        for _ in 0..iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.measurement = Measurement { total, iters };
    }
}

fn run_one(name: &str, budget: Duration, test_mode: bool, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        budget,
        test_mode,
        measurement: Measurement::default(),
    };
    f(&mut b);
    let ns = b.measurement.per_iter_ns();
    let human = if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    };
    println!(
        "bench: {name:<56} {human}/iter ({} iters)",
        b.measurement.iters
    );
}

pub struct Criterion {
    budget: Duration,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo test` runs harness=false bench binaries with `--test`;
        // `cargo bench` passes `--bench`. Unrecognized flags (filters,
        // `--noplot`, ...) are ignored.
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            budget: Duration::from_millis(20),
            test_mode,
        }
    }
}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, self.budget, self.test_mode, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.into(),
        }
    }
}

pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
}

impl<'a> BenchmarkGroup<'a> {
    /// Accepted for API compatibility; the shim sizes runs by time budget.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkIdOrStr>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into().0);
        run_one(&full, self.parent.budget, self.parent.test_mode, &mut f);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        run_one(&full, self.parent.budget, self.parent.test_mode, &mut |b| {
            f(b, input)
        });
        self
    }

    pub fn finish(self) {}
}

/// Accepts both `&str` and `BenchmarkId` where criterion is polymorphic.
pub struct BenchmarkIdOrStr(String);

impl From<&str> for BenchmarkIdOrStr {
    fn from(s: &str) -> Self {
        BenchmarkIdOrStr(s.to_string())
    }
}

impl From<String> for BenchmarkIdOrStr {
    fn from(s: String) -> Self {
        BenchmarkIdOrStr(s)
    }
}

impl From<BenchmarkId> for BenchmarkIdOrStr {
    fn from(id: BenchmarkId) -> Self {
        BenchmarkIdOrStr(id.id)
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("shim/add", |b| b.iter(|| black_box(2u64) + black_box(3)));
        let mut g = c.benchmark_group("shim/group");
        g.sample_size(10);
        for n in [1u64, 4] {
            g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
                b.iter(|| (0..n).sum::<u64>())
            });
        }
        g.bench_function("custom", |b| {
            b.iter_custom(|iters| {
                let start = std::time::Instant::now();
                for _ in 0..iters {
                    black_box(7u64 * 6);
                }
                start.elapsed()
            })
        });
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::LargeInput)
        });
        g.finish();
    }

    #[test]
    fn harness_runs_every_shape() {
        let mut c = Criterion {
            budget: Duration::from_millis(1),
            test_mode: false,
        };
        sample_bench(&mut c);
        let mut quick = Criterion {
            budget: Duration::from_millis(1),
            test_mode: true,
        };
        sample_bench(&mut quick);
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_macro_compiles_and_runs() {
        benches();
    }
}
