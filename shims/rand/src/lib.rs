//! Offline stand-in for the `rand` crate.
//!
//! `StdRng` is xoshiro256++ seeded through SplitMix64 — fast, and good
//! enough statistically for workload generation and tests. The trait
//! layout (`RngCore` / `Rng` / `SeedableRng` / `Distribution`) mirrors
//! rand 0.8 so call sites compile unchanged.

/// Low-level source of random 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seeding from a single `u64`, the only constructor this workspace uses.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        let unit: f64 = self.gen();
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range that can produce a uniformly distributed sample.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32);
        self.start + unit * (self.end - self.start)
    }
}

pub mod distributions {
    use super::Rng;

    /// Types that can produce values of `T` given a source of randomness.
    pub trait Distribution<T> {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The "natural" distribution: full-width integers, unit-interval floats.
    pub struct Standard;

    macro_rules! std_int_dist {
        ($($t:ty),*) => {$(
            impl Distribution<$t> for Standard {
                #[inline]
                fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    std_int_dist!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Distribution<bool> for Standard {
        #[inline]
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Distribution<f64> for Standard {
        #[inline]
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Distribution<f32> for Standard {
        #[inline]
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
        }
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ (Blackman & Vigna). Not the ChaCha12 of real rand,
    /// but deterministic per seed, which is all callers rely on.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod prelude {
    pub use super::distributions::Distribution;
    pub use super::rngs::StdRng;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::distributions::Distribution;
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..32).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.gen()).collect();
        let zs: Vec<u64> = (0..32).map(|_| c.gen()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_bounds_are_respected() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(5u64..=7);
            assert!((5..=7).contains(&w));
            let x: i32 = r.gen_range(-3..4);
            assert!((-3..4).contains(&x));
            let f = r.gen_range(0f64..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_small_domains() {
        let mut r = StdRng::seed_from_u64(9);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    fn works_through_dyn_and_generic_bounds() {
        struct Halver;
        impl Distribution<u64> for Halver {
            fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
                let u: f64 = rng.gen();
                assert!((0.0..1.0).contains(&u));
                rng.gen_range(0..100u64) / 2
            }
        }
        let mut r = StdRng::seed_from_u64(5);
        for _ in 0..100 {
            assert!(Halver.sample(&mut r) < 50);
        }
    }
}
