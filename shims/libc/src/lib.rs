//! Offline stand-in for the `libc` crate: only the declarations this
//! workspace uses (CPU affinity and core counting on Linux).

#![allow(non_camel_case_types, non_snake_case, clippy::missing_safety_doc)]

pub type c_int = i32;
pub type c_long = i64;
pub type pid_t = i32;
pub type size_t = usize;

/// `sysconf` selector for the number of online processors (Linux).
pub const _SC_NPROCESSORS_ONLN: c_int = 84;

const CPU_SETSIZE: usize = 1024;
const BITS_PER_WORD: usize = 64;

/// Mirror of glibc's `cpu_set_t`: a 1024-bit CPU mask.
#[repr(C)]
#[derive(Copy, Clone)]
pub struct cpu_set_t {
    bits: [u64; CPU_SETSIZE / BITS_PER_WORD],
}

pub unsafe fn CPU_ZERO(set: &mut cpu_set_t) {
    set.bits = [0; CPU_SETSIZE / BITS_PER_WORD];
}

pub unsafe fn CPU_SET(cpu: usize, set: &mut cpu_set_t) {
    if cpu < CPU_SETSIZE {
        set.bits[cpu / BITS_PER_WORD] |= 1u64 << (cpu % BITS_PER_WORD);
    }
}

pub unsafe fn CPU_ISSET(cpu: usize, set: &cpu_set_t) -> bool {
    cpu < CPU_SETSIZE && set.bits[cpu / BITS_PER_WORD] & (1u64 << (cpu % BITS_PER_WORD)) != 0
}

extern "C" {
    pub fn sysconf(name: c_int) -> c_long;
    pub fn sched_getcpu() -> c_int;
    pub fn sched_setaffinity(pid: pid_t, cpusetsize: size_t, mask: *const cpu_set_t) -> c_int;
}
