//! Offline stand-in for `parking_lot`: `Mutex` and `RwLock` with the
//! parking_lot calling convention (no poison `Result`s), implemented
//! over `std::sync`. A poisoned std lock propagates the panic, which
//! matches parking_lot's behavior of simply not tracking poison.

use std::fmt;
use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        self.0.try_lock().ok()
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}
