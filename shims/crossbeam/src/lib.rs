//! Offline stand-in for `crossbeam`: the `thread::scope` API this
//! workspace uses, delegating to `std::thread::scope` (Rust >= 1.63).

pub mod thread {
    use std::thread as stdthread;

    /// Mirrors `crossbeam::thread::Scope`. Wraps the std scope so that
    /// spawned closures receive a `&Scope` argument, as crossbeam's do.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope stdthread::Scope<'scope, 'env>,
    }

    pub struct ScopedJoinHandle<'scope, T>(stdthread::ScopedJoinHandle<'scope, T>);

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        pub fn join(self) -> stdthread::Result<T> {
            self.0.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle(inner.spawn(move || f(&Scope { inner })))
        }
    }

    /// Run `f` with a thread scope. Unlike crossbeam, a panicking child
    /// propagates the panic on join rather than surfacing as `Err`;
    /// callers that `.expect()` the result behave identically.
    pub fn scope<'env, F, R>(f: F) -> stdthread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(stdthread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_and_returns() {
        let mut data = vec![0u64; 8];
        let total = crate::thread::scope(|s| {
            let mut handles = Vec::new();
            for (i, slot) in data.iter_mut().enumerate() {
                handles.push(s.spawn(move |_| {
                    *slot = i as u64;
                    i as u64
                }));
            }
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
        })
        .unwrap();
        assert_eq!(total, 28);
        assert_eq!(data, (0..8).collect::<Vec<u64>>());
    }

    #[test]
    fn nested_spawn_from_child() {
        let n = crate::thread::scope(|s| {
            s.spawn(|inner| inner.spawn(|_| 41).join().unwrap() + 1)
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(n, 42);
    }
}
