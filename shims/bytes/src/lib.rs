//! Offline stand-in for the `bytes` crate: `Buf` over `&[u8]` and
//! `BufMut` over `Vec<u8>`, little-endian fixed-width accessors only.

/// Sequential reader over a byte cursor.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn get_u8(&mut self) -> u8;
    fn get_u16_le(&mut self) -> u16;
    fn get_u32_le(&mut self) -> u32;
    fn get_u64_le(&mut self) -> u64;
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn get_u8(&mut self) -> u8 {
        let (head, rest) = self.split_at(1);
        *self = rest;
        head[0]
    }

    fn get_u16_le(&mut self) -> u16 {
        let (head, rest) = self.split_at(2);
        *self = rest;
        u16::from_le_bytes(head.try_into().unwrap())
    }

    fn get_u32_le(&mut self) -> u32 {
        let (head, rest) = self.split_at(4);
        *self = rest;
        u32::from_le_bytes(head.try_into().unwrap())
    }

    fn get_u64_le(&mut self) -> u64 {
        let (head, rest) = self.split_at(8);
        *self = rest;
        u64::from_le_bytes(head.try_into().unwrap())
    }
}

/// Sequential writer.
pub trait BufMut {
    fn put_u8(&mut self, v: u8);
    fn put_u16_le(&mut self, v: u16);
    fn put_u32_le(&mut self, v: u32);
    fn put_u64_le(&mut self, v: u64);
    fn put_slice(&mut self, src: &[u8]);
}

impl BufMut for Vec<u8> {
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }

    fn put_u16_le(&mut self, v: u16) {
        self.extend_from_slice(&v.to_le_bytes());
    }

    fn put_u32_le(&mut self, v: u32) {
        self.extend_from_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.extend_from_slice(&v.to_le_bytes());
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut v: Vec<u8> = Vec::new();
        v.put_u8(0xAB);
        v.put_u16_le(0xBEEF);
        v.put_u32_le(0xDEAD_BEEF);
        v.put_u64_le(0x0123_4567_89AB_CDEF);
        v.put_slice(&[1, 2, 3]);
        let mut r: &[u8] = &v;
        assert_eq!(r.get_u8(), 0xAB);
        assert_eq!(r.get_u16_le(), 0xBEEF);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r, &[1, 2, 3]);
        assert_eq!(r.remaining(), 3);
    }
}
