//! Self-tests for the in-tree loom shim: the checker must *find*
//! genuine interleaving bugs (a lost update, a torn two-word read) and
//! must *pass* correct protocols after exploring every schedule within
//! the preemption bound.

use loom::cell::UnsafeCell;
use loom::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use loom::sync::Arc;

/// A non-atomic read-modify-write from two threads loses an update in
/// some interleaving; exhaustive exploration must find it.
#[test]
#[should_panic(expected = "loom model failed")]
fn finds_the_classic_lost_update() {
    loom::model(|| {
        let n = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let n = Arc::clone(&n);
                loom::thread::spawn(move || {
                    let v = n.load(Ordering::Relaxed);
                    n.store(v + 1, Ordering::Relaxed);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(n.load(Ordering::Relaxed), 2, "update lost");
    });
}

/// The same counter with a proper RMW never loses an update.
#[test]
fn fetch_add_never_loses_an_update() {
    loom::model(|| {
        let n = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let n = Arc::clone(&n);
                loom::thread::spawn(move || {
                    n.fetch_add(1, Ordering::Relaxed);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(n.load(Ordering::Relaxed), 2);
    });
}

/// Two racy cells behind the same `unsafe impl Sync` idiom the product
/// code uses for its protocol-protected slots.
struct Pair(UnsafeCell<u64>, UnsafeCell<u64>);
// SAFETY: test fixture; deliberately unsound sharing — the model is
// expected to catch the resulting tear.
unsafe impl Sync for Pair {}
unsafe impl Send for Pair {}

/// A writer updating two cells with no protocol can be observed
/// half-done; the checker must surface the torn read.
#[test]
#[should_panic(expected = "loom model failed")]
fn finds_a_torn_two_word_read() {
    loom::model(|| {
        let pair = Arc::new(Pair(UnsafeCell::new(0u64), UnsafeCell::new(0u64)));
        let ready = Arc::new(AtomicBool::new(false));
        let (p2, r2) = (Arc::clone(&pair), Arc::clone(&ready));
        let w = loom::thread::spawn(move || {
            // SAFETY: test fixture; deliberately unsynchronized — the
            // model is expected to catch the tear.
            p2.0.with_mut(|a| unsafe { *a = 7 });
            r2.store(true, Ordering::Relaxed);
            p2.1.with_mut(|b| unsafe { *b = 7 });
        });
        if ready.load(Ordering::Relaxed) {
            let a = pair.0.with(|a| unsafe { *a });
            let b = pair.1.with(|b| unsafe { *b });
            assert_eq!(a, b, "torn read observed");
        }
        w.join().unwrap();
    });
}

/// A spin-wait on a flag set by another thread terminates under the
/// cooperative scheduler (voluntary yields hand control over) and the
/// flag's effects are visible afterwards.
#[test]
fn spin_wait_handshake_terminates() {
    loom::model(|| {
        let flag = Arc::new(AtomicBool::new(false));
        let data = Arc::new(AtomicU64::new(0));
        let (f2, d2) = (Arc::clone(&flag), Arc::clone(&data));
        let h = loom::thread::spawn(move || {
            d2.store(42, Ordering::Relaxed);
            f2.store(true, Ordering::Release);
        });
        while !flag.load(Ordering::Acquire) {
            loom::hint::spin_loop();
        }
        assert_eq!(data.load(Ordering::Relaxed), 42);
        h.join().unwrap();
    });
}

/// `join` returns the child's value, and exploration actually visits
/// more than one schedule for a contended model.
#[test]
fn join_returns_values_and_multiple_schedules_run() {
    let executions = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
    let counter = std::sync::Arc::clone(&executions);
    loom::model(move || {
        counter.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let a = Arc::new(AtomicUsize::new(1));
        let a2 = Arc::clone(&a);
        let h = loom::thread::spawn(move || a2.fetch_add(1, Ordering::Relaxed));
        let other = loom::thread::spawn(|| 40usize);
        let prev = h.join().unwrap();
        assert!(
            prev == 1 || prev == 2,
            "fetch_add returned a valid prior value"
        );
        assert_eq!(other.join().unwrap(), 40);
        assert_eq!(a.load(Ordering::Relaxed), 2);
    });
    assert!(
        executions.load(std::sync::atomic::Ordering::Relaxed) > 1,
        "contended model must explore multiple schedules"
    );
}

/// A child panic is reported as a model failure, not swallowed.
#[test]
#[should_panic(expected = "loom model failed")]
fn child_panic_fails_the_model() {
    loom::model(|| {
        let h = loom::thread::spawn(|| panic!("child exploded"));
        let _ = h.join();
    });
}
