//! In-tree stand-in for the [`loom`](https://crates.io/crates/loom)
//! model checker (the build environment has no registry access; see
//! `shims/README.md`).
//!
//! Like the real crate, this explores the interleavings of a small
//! multi-threaded model: every `loom::sync`/`loom::cell` operation is a
//! scheduling point, and [`model`] drives a depth-first search over all
//! schedules up to a preemption bound.  Unlike the real crate it checks
//! under **sequential consistency only** — thread interleavings are
//! explored exhaustively (within the bound), but C11 weak-memory
//! reorderings and `Arc`-drop orderings are not modeled, and
//! `compare_exchange_weak` never fails spuriously.  Models therefore
//! prove protocol-level properties (lost updates, torn reads, counter
//! conservation, deadlock) rather than full memory-ordering
//! correctness.

mod model;
pub(crate) mod rt;

pub mod cell;
pub mod hint;
pub mod sync;
pub mod thread;

pub use model::model;
