//! The cooperative scheduler and DFS schedule explorer.
//!
//! One execution of a model runs every "loom thread" on a real OS
//! thread, but only one of them is ever runnable at a time: every
//! synchronization operation (atomic access, cell access, spawn, join,
//! yield) funnels into [`Scheduler::switch`], which consults the
//! current schedule *trail* to decide which thread runs next.  The
//! explorer in [`crate::model`] then drives a depth-first search over
//! all trails: after each execution it advances the last decision with
//! an unexplored alternative and replays the prefix.
//!
//! Exploration is *preemption-bounded* (classic context-bounded model
//! checking): switching away from a thread that could have continued
//! costs one unit of a budget (`LOOM_MAX_PREEMPTIONS`, default 2);
//! forced switches — the current thread blocked, finished, or yielded —
//! are free.  Within the bound the search is exhaustive.

use std::panic;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Hard cap on scheduling points in a single execution; beyond this the
/// model is assumed to be livelocked (e.g. two threads spinning on each
/// other) and the execution aborts with a diagnostic.
const OPS_LIMIT: u64 = 500_000;

/// Panic payload used to unwind a loom thread out of user code when the
/// execution has been aborted (another thread panicked, deadlock, or
/// livelock guard).  Not a model failure by itself.
pub(crate) struct Aborted;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Run {
    Runnable,
    /// Waiting for the given thread id to finish (a `join`).
    Blocked(usize),
    Done,
}

/// One recorded scheduling decision: which of `total` candidate threads
/// was chosen at this branch point.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Branch {
    pub chosen: usize,
    pub total: usize,
}

/// Why the current thread is handing control to the scheduler.
pub(crate) enum Switch {
    /// Involuntary point (before an atomic or cell access): continuing
    /// is free, switching away costs one preemption.
    Point,
    /// Voluntary yield (`yield_now` / `spin_loop`): another runnable
    /// thread *must* be chosen if one exists, at no preemption cost.
    /// Staying put would re-examine unchanged state, so the pruning is
    /// sound.
    Yield,
    /// The current thread just blocked or finished; a switch is forced
    /// and free.
    Gone,
}

struct State {
    threads: Vec<Run>,
    active: usize,
    /// DFS decision trail; only genuine branch points (more than one
    /// candidate) are recorded.
    trail: Vec<Branch>,
    /// Index of the next branch point in this execution.
    depth: usize,
    preemptions: usize,
    max_preemptions: usize,
    ops: u64,
    abort: Option<String>,
    os_handles: Vec<std::thread::JoinHandle<()>>,
}

pub(crate) struct Scheduler {
    state: Mutex<State>,
    cv: Condvar,
}

impl Scheduler {
    pub fn new(trail: Vec<Branch>, max_preemptions: usize) -> Self {
        Scheduler {
            state: Mutex::new(State {
                threads: Vec::new(),
                active: 0,
                trail,
                depth: 0,
                preemptions: 0,
                max_preemptions,
                ops: 0,
                abort: None,
                os_handles: Vec::new(),
            }),
            cv: Condvar::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, State> {
        // A panicking loom thread never holds the lock (every abort
        // path drops the guard first), so poison is never meaningful.
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Register a new loom thread; returns its id (runnable).
    pub fn register(&self) -> usize {
        let mut st = self.lock();
        st.threads.push(Run::Runnable);
        st.threads.len() - 1
    }

    pub fn add_os_handle(&self, h: std::thread::JoinHandle<()>) {
        self.lock().os_handles.push(h);
    }

    pub fn take_os_handles(&self) -> Vec<std::thread::JoinHandle<()>> {
        std::mem::take(&mut self.lock().os_handles)
    }

    /// Final trail and abort message of a finished execution.
    pub fn take_outcome(&self) -> (Vec<Branch>, Option<String>) {
        let mut st = self.lock();
        (std::mem::take(&mut st.trail), st.abort.take())
    }

    fn set_abort(st: &mut State, cv: &Condvar, msg: String) {
        if st.abort.is_none() {
            st.abort = Some(msg);
        }
        cv.notify_all();
    }

    /// Record a user-code panic as the model failure.
    pub fn record_panic(&self, payload: &(dyn std::any::Any + Send)) {
        let msg = if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "model thread panicked".to_string()
        };
        let mut st = self.lock();
        Self::set_abort(&mut st, &self.cv, msg);
    }

    pub fn is_done(&self, tid: usize) -> bool {
        self.lock().threads[tid] == Run::Done
    }

    /// Park a freshly spawned OS thread until it is scheduled for the
    /// first time.  Returns `false` if the execution aborted before
    /// that ever happened (the closure must not run).
    pub fn wait_first(&self, me: usize) -> bool {
        let mut st = self.lock();
        while st.active != me && st.abort.is_none() {
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        if st.abort.is_some() {
            st.threads[me] = Run::Done;
            self.cv.notify_all();
            return false;
        }
        true
    }

    /// Mark `me` as waiting for `target` to finish, then hand off.
    pub fn block_on(self: &Arc<Self>, me: usize, target: usize) {
        {
            let mut st = self.lock();
            if st.threads[target] == Run::Done {
                return;
            }
            st.threads[me] = Run::Blocked(target);
        }
        self.switch(me, Switch::Gone);
    }

    /// Mark `me` finished, wake its joiners, and hand off control.
    pub fn finish(self: &Arc<Self>, me: usize) {
        {
            let mut st = self.lock();
            st.threads[me] = Run::Done;
            for r in st.threads.iter_mut() {
                if *r == Run::Blocked(me) {
                    *r = Run::Runnable;
                }
            }
            if st.abort.is_some() {
                self.cv.notify_all();
                return;
            }
        }
        // The handoff may observe an abort raised meanwhile; swallow
        // the sentinel so the OS thread exits cleanly.
        let me_sched = Arc::clone(self);
        let _ = panic::catch_unwind(panic::AssertUnwindSafe(move || {
            me_sched.switch(me, Switch::Gone);
        }));
    }

    /// The single scheduling point: pick (via the DFS trail) which
    /// thread runs next and block until `me` is active again.
    pub fn switch(self: &Arc<Self>, me: usize, kind: Switch) {
        let mut st = self.lock();
        if st.abort.is_some() {
            drop(st);
            panic::panic_any(Aborted);
        }
        st.ops += 1;
        if st.ops > OPS_LIMIT {
            Self::set_abort(
                &mut st,
                &self.cv,
                format!("execution exceeded {OPS_LIMIT} scheduling points: livelock suspected"),
            );
            drop(st);
            panic::panic_any(Aborted);
        }
        let runnable: Vec<usize> = st
            .threads
            .iter()
            .enumerate()
            .filter(|(_, r)| matches!(r, Run::Runnable))
            .map(|(i, _)| i)
            .collect();
        let candidates: Vec<usize> = match kind {
            Switch::Point => {
                if st.preemptions >= st.max_preemptions {
                    vec![me]
                } else {
                    // Candidate 0 is "continue"; every other choice is
                    // a preemption.
                    let mut c = vec![me];
                    c.extend(runnable.iter().copied().filter(|&t| t != me));
                    c
                }
            }
            Switch::Yield => {
                let others: Vec<usize> = runnable.iter().copied().filter(|&t| t != me).collect();
                if others.is_empty() {
                    vec![me]
                } else {
                    others
                }
            }
            Switch::Gone => {
                if runnable.is_empty() {
                    if st.threads.iter().any(|r| !matches!(r, Run::Done)) {
                        Self::set_abort(
                            &mut st,
                            &self.cv,
                            "deadlock: every unfinished thread is blocked".into(),
                        );
                        drop(st);
                        panic::panic_any(Aborted);
                    }
                    // Everything is done; nothing left to schedule.
                    self.cv.notify_all();
                    return;
                }
                runnable
            }
        };
        let chosen = if candidates.len() == 1 {
            candidates[0]
        } else {
            let d = st.depth;
            if d == st.trail.len() {
                st.trail.push(Branch {
                    chosen: 0,
                    total: candidates.len(),
                });
            }
            let b = st.trail[d];
            assert_eq!(
                b.total,
                candidates.len(),
                "loom: non-deterministic model (branch arity changed on replay)"
            );
            st.depth += 1;
            candidates[b.chosen]
        };
        if matches!(kind, Switch::Point) && chosen != me {
            st.preemptions += 1;
        }
        st.active = chosen;
        if chosen == me {
            return;
        }
        self.cv.notify_all();
        if st.threads[me] == Run::Done {
            // A finished thread hands off and exits; never re-scheduled.
            return;
        }
        while st.active != me && st.abort.is_none() {
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        if st.abort.is_some() {
            drop(st);
            panic::panic_any(Aborted);
        }
    }
}

/// Advance the trail to the next unexplored schedule (DFS backtrack).
/// Returns `false` when the whole space within the bound is exhausted.
pub(crate) fn advance(trail: &mut Vec<Branch>) -> bool {
    while let Some(last) = trail.last_mut() {
        if last.chosen + 1 < last.total {
            last.chosen += 1;
            return true;
        }
        trail.pop();
    }
    false
}

std::thread_local! {
    static CURRENT: std::cell::RefCell<Option<(Arc<Scheduler>, usize)>> =
        const { std::cell::RefCell::new(None) };
}

pub(crate) fn set_current(sched: &Arc<Scheduler>, tid: usize) {
    CURRENT.with(|c| *c.borrow_mut() = Some((Arc::clone(sched), tid)));
}

pub(crate) fn current() -> (Arc<Scheduler>, usize) {
    CURRENT.with(|c| {
        c.borrow()
            .clone()
            .expect("loom synchronization primitive used outside loom::model")
    })
}

/// Involuntary scheduling point (before an atomic or cell access).
pub(crate) fn point() {
    let (sched, me) = current();
    sched.switch(me, Switch::Point);
}

/// Voluntary yield: another runnable thread is preferred, for free.
pub(crate) fn yield_point() {
    let (sched, me) = current();
    sched.switch(me, Switch::Yield);
}
