//! Model-checked `std::thread` replacements.

use crate::rt::{self, Switch};
use std::sync::{Arc, Mutex};

/// Handle to a spawned model thread; [`JoinHandle::join`] participates
/// in the schedule exploration like `std::thread::JoinHandle` would.
pub struct JoinHandle<T> {
    tid: usize,
    result: Arc<Mutex<Option<std::thread::Result<T>>>>,
}

/// Spawn a model thread.  A scheduling point: the child may be chosen
/// to run before the parent continues.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let (sched, me) = rt::current();
    let tid = sched.register();
    let result: Arc<Mutex<Option<std::thread::Result<T>>>> = Arc::new(Mutex::new(None));
    let slot = Arc::clone(&result);
    let child_sched = Arc::clone(&sched);
    let os = std::thread::Builder::new()
        .name(format!("loom-{tid}"))
        .spawn(move || {
            rt::set_current(&child_sched, tid);
            if !child_sched.wait_first(tid) {
                return; // execution aborted before the first schedule
            }
            let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
            if let Err(p) = &out {
                if p.downcast_ref::<rt::Aborted>().is_none() {
                    child_sched.record_panic(&**p);
                }
            }
            *slot.lock().unwrap_or_else(|e| e.into_inner()) = Some(out);
            child_sched.finish(tid);
        })
        .expect("spawn loom thread");
    sched.add_os_handle(os);
    sched.switch(me, Switch::Point);
    JoinHandle { tid, result }
}

impl<T> JoinHandle<T> {
    /// Block until the thread finishes; returns its result exactly like
    /// `std::thread::JoinHandle::join` (an `Err` carries the panic
    /// payload, though a panicking child fails the whole model anyway).
    pub fn join(self) -> std::thread::Result<T> {
        let (sched, me) = rt::current();
        while !sched.is_done(self.tid) {
            sched.block_on(me, self.tid);
        }
        self.result
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take()
            .expect("loom thread result already taken")
    }
}

/// Voluntary yield; the scheduler prefers another runnable thread.
pub fn yield_now() {
    rt::yield_point();
}
