//! The exploration driver: run a model closure under every schedule
//! the preemption bound admits.

use crate::rt::{self, Branch, Scheduler};
use std::panic;
use std::sync::Arc;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Exhaustively explore every interleaving of the model closure's
/// threads, up to `LOOM_MAX_PREEMPTIONS` involuntary context switches
/// per execution (default 2).  Panics — failing the enclosing test —
/// if any execution panics, deadlocks, or livelocks.
///
/// Environment knobs:
/// - `LOOM_MAX_PREEMPTIONS`: preemption budget per execution (default 2).
/// - `LOOM_MAX_EXECUTIONS`: safety cap on explored schedules (default
///   1,000,000); exceeding it fails the model rather than silently
///   truncating the search.
/// - `LOOM_LOG`: when set, print the number of schedules explored.
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    let max_preemptions = env_usize("LOOM_MAX_PREEMPTIONS", 2);
    let max_execs = env_usize("LOOM_MAX_EXECUTIONS", 1_000_000) as u64;
    let f = Arc::new(f);
    let mut trail: Vec<Branch> = Vec::new();
    let mut execs: u64 = 0;
    loop {
        execs += 1;
        assert!(
            execs <= max_execs,
            "loom: exceeded LOOM_MAX_EXECUTIONS ({max_execs}) — raise the cap \
             or shrink the model"
        );
        let sched = Arc::new(Scheduler::new(std::mem::take(&mut trail), max_preemptions));
        let tid0 = sched.register();
        debug_assert_eq!(tid0, 0);
        let f2 = Arc::clone(&f);
        let s2 = Arc::clone(&sched);
        // Thread 0 runs the model body; it is active from the start.
        let root = std::thread::Builder::new()
            .name("loom-0".into())
            .spawn(move || {
                rt::set_current(&s2, tid0);
                let out = panic::catch_unwind(panic::AssertUnwindSafe(|| f2()));
                if let Err(p) = out {
                    if p.downcast_ref::<rt::Aborted>().is_none() {
                        s2.record_panic(&*p);
                    }
                }
                s2.finish(tid0);
            })
            .expect("spawn loom root thread");
        root.join().expect("loom root wrapper never panics");
        // Drain every OS thread this execution spawned (threads may
        // themselves spawn more, hence the loop).
        loop {
            let handles = sched.take_os_handles();
            if handles.is_empty() {
                break;
            }
            for h in handles {
                let _ = h.join();
            }
        }
        let (end_trail, abort) = sched.take_outcome();
        if let Some(msg) = abort {
            panic!("loom model failed (schedule {execs}): {msg}");
        }
        trail = end_trail;
        if !rt::advance(&mut trail) {
            break;
        }
    }
    if std::env::var("LOOM_LOG").is_ok() {
        eprintln!("loom: explored {execs} schedules (preemption bound {max_preemptions})");
    }
}
