//! Model-checked interior mutability.

/// An `UnsafeCell` whose accesses are scheduling points, so the
/// explorer can interleave other threads between a protocol's atomic
/// claim and the data access it guards.
///
/// `#[repr(transparent)]`: layout-identical to `std::cell::UnsafeCell`,
/// so arrays of cells stay contiguous and pointer arithmetic across
/// elements (the incoming-buffer byte array) behaves identically in
/// both modes.
#[derive(Debug, Default)]
#[repr(transparent)]
pub struct UnsafeCell<T>(std::cell::UnsafeCell<T>);

impl<T> UnsafeCell<T> {
    pub const fn new(v: T) -> Self {
        UnsafeCell(std::cell::UnsafeCell::new(v))
    }

    /// Immutable access to the cell contents via raw pointer.
    pub fn with<R>(&self, f: impl FnOnce(*const T) -> R) -> R {
        crate::rt::point();
        f(self.0.get())
    }

    /// Mutable access to the cell contents via raw pointer.
    pub fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
        crate::rt::point();
        f(self.0.get())
    }
}
