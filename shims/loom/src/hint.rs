//! Spin-loop hint that actually yields under the model.
//!
//! A real `std::hint::spin_loop` is invisible to a cooperative
//! scheduler; mapping it to a voluntary yield both avoids livelock
//! (the awaited thread always gets to run) and keeps exploration
//! bounded (a voluntary switch is not a preemption).

pub fn spin_loop() {
    crate::rt::yield_point();
}
