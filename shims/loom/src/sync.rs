//! Model-checked `std::sync` replacements.
//!
//! Every atomic operation is a scheduling point, after which the real
//! operation runs `SeqCst` — the model explores thread *interleavings*
//! under sequential consistency.  Weak-memory reorderings are not
//! modeled (see `shims/README.md`); the `Ordering` arguments are
//! accepted for API fidelity and so the checked source is identical to
//! what ships.

pub use std::sync::Arc;

pub mod atomic {
    pub use std::sync::atomic::Ordering;
    const SC: Ordering = Ordering::SeqCst;

    macro_rules! int_atomic {
        ($name:ident, $ty:ty) => {
            #[derive(Debug, Default)]
            pub struct $name(std::sync::atomic::$name);

            impl $name {
                pub const fn new(v: $ty) -> Self {
                    Self(std::sync::atomic::$name::new(v))
                }
                pub fn load(&self, _o: Ordering) -> $ty {
                    crate::rt::point();
                    self.0.load(SC)
                }
                pub fn store(&self, v: $ty, _o: Ordering) {
                    crate::rt::point();
                    self.0.store(v, SC)
                }
                pub fn swap(&self, v: $ty, _o: Ordering) -> $ty {
                    crate::rt::point();
                    self.0.swap(v, SC)
                }
                pub fn compare_exchange(
                    &self,
                    cur: $ty,
                    new: $ty,
                    _s: Ordering,
                    _f: Ordering,
                ) -> Result<$ty, $ty> {
                    crate::rt::point();
                    self.0.compare_exchange(cur, new, SC, SC)
                }
                /// Modeled without spurious failures (like loom).
                pub fn compare_exchange_weak(
                    &self,
                    cur: $ty,
                    new: $ty,
                    s: Ordering,
                    f: Ordering,
                ) -> Result<$ty, $ty> {
                    self.compare_exchange(cur, new, s, f)
                }
                pub fn fetch_add(&self, v: $ty, _o: Ordering) -> $ty {
                    crate::rt::point();
                    self.0.fetch_add(v, SC)
                }
                pub fn fetch_sub(&self, v: $ty, _o: Ordering) -> $ty {
                    crate::rt::point();
                    self.0.fetch_sub(v, SC)
                }
                pub fn fetch_and(&self, v: $ty, _o: Ordering) -> $ty {
                    crate::rt::point();
                    self.0.fetch_and(v, SC)
                }
                pub fn fetch_or(&self, v: $ty, _o: Ordering) -> $ty {
                    crate::rt::point();
                    self.0.fetch_or(v, SC)
                }
                pub fn fetch_max(&self, v: $ty, _o: Ordering) -> $ty {
                    crate::rt::point();
                    self.0.fetch_max(v, SC)
                }
                pub fn fetch_min(&self, v: $ty, _o: Ordering) -> $ty {
                    crate::rt::point();
                    self.0.fetch_min(v, SC)
                }
                pub fn into_inner(self) -> $ty {
                    self.0.into_inner()
                }
            }
        };
    }

    int_atomic!(AtomicU8, u8);
    int_atomic!(AtomicU32, u32);
    int_atomic!(AtomicU64, u64);
    int_atomic!(AtomicUsize, usize);
    int_atomic!(AtomicI64, i64);

    #[derive(Debug, Default)]
    pub struct AtomicBool(std::sync::atomic::AtomicBool);

    impl AtomicBool {
        pub const fn new(v: bool) -> Self {
            Self(std::sync::atomic::AtomicBool::new(v))
        }
        pub fn load(&self, _o: Ordering) -> bool {
            crate::rt::point();
            self.0.load(SC)
        }
        pub fn store(&self, v: bool, _o: Ordering) {
            crate::rt::point();
            self.0.store(v, SC)
        }
        pub fn swap(&self, v: bool, _o: Ordering) -> bool {
            crate::rt::point();
            self.0.swap(v, SC)
        }
        pub fn compare_exchange(
            &self,
            cur: bool,
            new: bool,
            _s: Ordering,
            _f: Ordering,
        ) -> Result<bool, bool> {
            crate::rt::point();
            self.0.compare_exchange(cur, new, SC, SC)
        }
        pub fn compare_exchange_weak(
            &self,
            cur: bool,
            new: bool,
            s: Ordering,
            f: Ordering,
        ) -> Result<bool, bool> {
            self.compare_exchange(cur, new, s, f)
        }
        pub fn into_inner(self) -> bool {
            self.0.into_inner()
        }
    }

    /// A fence is a scheduling point; ordering is already sequentially
    /// consistent in the model.
    pub fn fence(_o: Ordering) {
        crate::rt::point();
        std::sync::atomic::fence(SC);
    }
}
