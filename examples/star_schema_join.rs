//! A star-schema analytical query on top of ERIS, using the query layer
//! the paper names as future work: filter a fact table, materialize the
//! intermediate result NUMA-aware, and join it against a dimension index
//! through routed lookups.
//!
//! The query, in SQL-ish form:
//!
//! ```sql
//! SELECT count(*)
//! FROM   line_items l JOIN premium_products p ON l.product_id = p.id
//! WHERE  l.product_id < 200_000;      -- filter pushed below the join
//! ```
//!
//! ```sh
//! cargo run --release -p eris-bench --example star_schema_join
//! ```

use eris_core::prelude::*;
use eris_query::QueryEngine;

fn main() {
    // The AMD machine: 8 nodes, 64 AEUs.
    let mut q = QueryEngine::new(
        eris_numa::amd_machine(),
        EngineConfig {
            collect_results: true,
            ..Default::default()
        },
    );
    println!("query engine on {} AEUs\n", q.engine().num_aeus());

    // Dimension: premium products — every 3rd product id qualifies.
    let products: u64 = 1 << 20;
    let premium = q.create_index("premium_products", products);
    q.insert_pairs(premium, (0..products / 3).map(|i| (i * 3, i)));
    println!(
        "dimension 'premium_products': {} keys (every 3rd id)",
        q.object_len(premium)
    );

    // Fact: line items referencing product ids.
    let line_items = q.create_column("line_items");
    let rows: u64 = 1 << 20;
    q.insert_rows(
        line_items,
        (0..rows).map(|i| (i.wrapping_mul(2654435761)) % products),
    );
    println!("fact 'line_items': {} rows\n", q.object_len(line_items));

    // Step 1: selective filter, materialized NUMA-aware into a fresh
    // size-partitioned column (the routing layer spreads the appends).
    let t0 = q.engine().clock().now_secs();
    let (hot, filtered) = q.filter_into(
        "hot_items",
        line_items,
        Predicate::Range { lo: 0, hi: 200_000 },
    );
    println!("σ(product_id < 200000): {filtered} rows materialized into 'hot_items'");
    let lens: Vec<usize> = q
        .engine()
        .aeu_ids()
        .iter()
        .map(|a| {
            q.engine()
                .aeu(*a)
                .partition(hot)
                .map_or(0, |p| p.data.len())
        })
        .collect();
    println!(
        "  intermediate result spread: {} AEUs hold {}..{} rows each",
        lens.iter().filter(|&&l| l > 0).count(),
        lens.iter().min().unwrap(),
        lens.iter().max().unwrap()
    );

    // Step 2: index-nested-loop join — every AEU probes the dimension with
    // its local intermediate rows; lookups travel the routing layer.
    let join = q.index_join_count(hot, Predicate::All, premium);
    let elapsed = q.engine().clock().now_secs() - t0;
    println!(
        "\n⋈ premium_products: {} of {} probes matched",
        join.matches, join.probes
    );
    println!("query virtual time: {:.2} ms", elapsed * 1e3);

    // Validate against a direct computation.
    let expected = (0..rows)
        .map(|i| (i.wrapping_mul(2654435761)) % products)
        .filter(|&pid| pid < 200_000 && pid % 3 == 0)
        .count() as u64;
    assert_eq!(join.matches, expected, "join cardinality is exact");
    println!("verified against direct computation: {expected} matches ✓");

    let c = q.engine().counters();
    println!(
        "\nNUMA profile: {:.1} MB crossed the interconnect, {} local / {} remote requests",
        c.total_link_bytes() as f64 / 1e6,
        c.local_requests,
        c.remote_requests
    );
}
