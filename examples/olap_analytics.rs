//! An analytical workload on ERIS: a fact column scanned by many concurrent
//! queries with different predicates — the scan-sharing scenario that
//! motivates the paper's command coalescing (Section 3.1).
//!
//! Several scan commands issued in the same round are coalesced by each AEU
//! into a *single* pass over its partition; the example shows that the rows
//! examined (and the virtual time paid) correspond to one sweep, not one
//! per query.
//!
//! ```sh
//! cargo run --release -p eris-bench --example olap_analytics
//! ```

use eris_core::prelude::*;

fn main() {
    // The big SGI box: 64 nodes, 512 AEUs.
    let mut engine = Engine::new(
        eris_numa::sgi_machine(),
        EngineConfig {
            collect_results: true,
            ..Default::default()
        },
    );
    println!("engine: {} AEUs on {} nodes\n", engine.num_aeus(), 64);

    // A size-partitioned sales column: every AEU stores a local partition.
    let sales = engine.create_column("sales_amounts");
    let rows: u64 = 1 << 20;
    engine.bulk_load_column(sales, (0..rows).map(|i| i % 10_000));
    println!("loaded {rows} rows, spread NUMA-locally over all AEUs");

    // Five analytical queries arrive in the same round: different
    // predicates and aggregates over the same fact column.
    let queries = [
        ("total revenue", Predicate::All, Aggregate::Sum),
        ("row count", Predicate::All, Aggregate::Count),
        (
            "big-ticket count",
            Predicate::Range {
                lo: 9_000,
                hi: 10_000,
            },
            Aggregate::Count,
        ),
        (
            "mid-range extremes",
            Predicate::Range {
                lo: 4_000,
                hi: 6_000,
            },
            Aggregate::MinMax,
        ),
        (
            "exact price hits",
            Predicate::Equals(1234),
            Aggregate::Count,
        ),
    ];
    for (i, (_, pred, agg)) in queries.iter().enumerate() {
        engine
            .submit(
                AeuId(i as u32),
                DataCommand {
                    object: sales,
                    ticket: i as u64,
                    payload: Payload::Scan {
                        pred: *pred,
                        agg: *agg,
                        snapshot: u64::MAX,
                    },
                },
            )
            .unwrap();
    }
    engine.run_until_drained();

    println!("\nresults (combined from per-AEU partials):");
    for (i, (name, _, _)) in queries.iter().enumerate() {
        println!(
            "  {name:20} {:?}",
            engine.results().combine_scan(i as u64).unwrap()
        );
    }

    // Scan sharing: five queries, one sweep.  rows_scanned counts the rows
    // *examined*, which equal one pass over the column — not five.
    let counts = engine.results().counts();
    println!(
        "\nscan sharing: {} scan partials answered while examining {} rows total",
        counts.scans, counts.rows_scanned,
    );
    println!(
        "(a naive engine would have examined {} rows for these 5 queries)",
        5 * rows
    );
    assert!(counts.rows_scanned <= 2 * rows, "coalesced to ~one sweep");

    // The engine's live telemetry tells the same story from the routing
    // side: the five scans were multicast to every member AEU, delivered
    // through flushes and buffer swaps, and coalesced on execution.
    let snapshot = engine.telemetry();
    println!("\n{snapshot}");
    assert!(snapshot.conservation_holds(), "enqueued == executed");
}
