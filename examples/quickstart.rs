//! Quickstart: build an ERIS engine on a simulated NUMA machine, create an
//! index, and run lookups/upserts/scans through the data command routing
//! layer.
//!
//! ```sh
//! cargo run --release -p eris-bench --example quickstart
//! ```

use eris_core::prelude::*;

fn main() {
    // A 4-node Intel box (Table 1 of the paper): 40 cores -> 40 AEUs.
    let topo = eris_numa::intel_machine();
    println!(
        "platform: {} ({} nodes, {} cores)",
        topo.name(),
        topo.num_nodes(),
        topo.num_cores()
    );
    let mut engine = Engine::new(
        topo,
        EngineConfig {
            collect_results: true,
            ..Default::default()
        },
    );
    println!("engine: {} AEUs, one pinned per core\n", engine.num_aeus());

    // A range-partitioned index over a 1M-key domain, evenly split.
    let orders = engine.create_index("orders", 1 << 20);

    // Bulk-load: order id -> amount.
    engine.bulk_load_index(orders, (0..100_000u64).map(|k| (k, k % 997)));

    // Point lookups are routed to the owning AEUs and batched there.
    engine
        .submit(
            AeuId(0),
            DataCommand {
                object: orders,
                ticket: 1,
                payload: Payload::Lookup {
                    keys: vec![42, 99_999, 500_000],
                },
            },
        )
        .unwrap();
    engine.run_until_drained();
    let mut results = engine.results().take_lookup_values();
    results.sort();
    for (ticket, key, value) in results {
        println!("lookup[{ticket}] key {key:>7} -> {value:?}");
    }

    // Upserts route the same way; order stays intact per partition.
    engine
        .submit(
            AeuId(3),
            DataCommand {
                object: orders,
                ticket: 2,
                payload: Payload::Upsert {
                    pairs: vec![(500_000, 777)],
                },
            },
        )
        .unwrap();
    engine.run_until_drained();

    // Scans multicast to every AEU whose range intersects the predicate;
    // each AEU contributes a partial aggregate.
    engine
        .submit(
            AeuId(7),
            DataCommand {
                object: orders,
                ticket: 3,
                payload: Payload::Scan {
                    pred: Predicate::Range { lo: 0, hi: 1 << 20 },
                    agg: Aggregate::Count,
                    snapshot: u64::MAX,
                },
            },
        )
        .unwrap();
    engine.run_until_drained();
    println!("\nfull scan count: {:?}", engine.results().combine_scan(3));
    println!(
        "lookup after upsert: routed through {} AEUs, clock at {:.1} µs virtual",
        engine.num_aeus(),
        engine.clock().now_ns() / 1000.0
    );

    // The NUMA counters show how local the engine stayed.
    let c = engine.counters();
    println!(
        "traffic: {} local requests, {} remote; {:.1} KB over the interconnect",
        c.local_requests,
        c.remote_requests,
        c.total_link_bytes() as f64 / 1024.0
    );

    // Live telemetry: routing/execution counters and the conservation
    // ledger.  After a drain, enqueued == executed for every object.
    let snapshot = engine.telemetry();
    assert!(snapshot.conservation_holds());
    let t = &snapshot.totals;
    println!(
        "telemetry: {} routed ({} unicast, {} multicast), {} executed, {} flushes, {} swaps",
        t.commands_routed,
        t.commands_unicast,
        t.commands_multicast,
        t.commands_executed,
        t.flushes,
        t.buffer_swaps
    );
}
