//! Serving-layer quickstart: frame commands over a loopback connection,
//! watch admission control work, and shut down with a conservation proof.
//!
//! Three clients (two tenants) drive an [`EngineServer`] over in-process
//! loopback transports.  Tenant 1 runs with a tiny token bucket so its
//! quota denials are visible; the server's per-tenant telemetry and the
//! combined serving + engine ledger are printed at the end.
//!
//! ```sh
//! cargo run --release -p eris-server --example server_quickstart
//! ```

use eris_core::prelude::*;
use eris_server::{
    loopback_pair, AdmissionConfig, Client, EngineServer, PipeTransport, ServerConfig,
};

fn main() {
    // A small engine: one index, balancer off for a deterministic demo.
    let domain: u64 = 1 << 18;
    let mut engine = Engine::new(
        eris_numa::machines::custom_machine("demo", 2, 4, 20.0, 100.0, 10.0, 60.0),
        EngineConfig {
            balancer: BalancerConfig {
                enabled: false,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    let idx = engine.create_index("kv", domain);
    engine.bulk_load_index(idx, (0..domain).step_by(4).map(|k| (k, k)));

    // Two tenants: tenant 0 generous, the shared bucket defaults apply
    // to both — tenant 1 will simply send far more than it is allowed.
    let server_cfg = ServerConfig {
        tenants: 2,
        admission: AdmissionConfig {
            credit_limit: 8,
            quota_capacity_ops: 2_000,
            quota_refill_ops_per_sec: 50_000,
            ..Default::default()
        },
        ..Default::default()
    };
    let mut server = EngineServer::new(engine, server_cfg);

    // Three connections: tenants 0, 0, 1.
    let mut clients: Vec<Client<PipeTransport>> = [0u32, 0, 1]
        .iter()
        .map(|&tenant| {
            let (server_side, client_side) = loopback_pair();
            server.attach(Box::new(server_side));
            Client::connect(client_side, tenant)
        })
        .collect();

    // Drive an open-ish loop: every cycle each client tries a batch of
    // lookups; the credit window decides how many actually go out.
    let mut rng = 0x2545F4914F6CDD1Du64;
    for _cycle in 0..200 {
        for c in clients.iter_mut() {
            c.poll();
            for _ in 0..4 {
                rng ^= rng << 13;
                rng ^= rng >> 7;
                rng ^= rng << 17;
                let keys: Vec<u64> = (0..8).map(|i| (rng >> i) % domain).collect();
                let cmd = DataCommand {
                    object: idx,
                    ticket: 0,
                    payload: Payload::Lookup { keys },
                };
                if !c.try_send(&cmd) {
                    break;
                }
            }
            c.poll();
        }
        server.pump();
    }
    // Let in-flight responses settle.
    server.pump_until_quiet(16);
    for c in clients.iter_mut() {
        c.poll();
        c.send_bye();
        c.poll();
    }
    server.pump();
    for c in clients.iter_mut() {
        c.poll();
    }

    println!("== client view ==");
    for (i, c) in clients.iter().enumerate() {
        let s = c.stats();
        println!(
            "conn {i}: sent={} accepted={} shed={} quota_denied={} rejected={} stalls={}",
            s.sent, s.accepted, s.shed, s.quota_denied, s.rejected, s.credit_stalls
        );
    }

    let snap = server.snapshot();
    println!("\n== server view (per tenant) ==");
    for t in &snap.tenants {
        println!(
            "tenant {}: accepted={} shed={} quota_denied={} credits_stalled={} rejected={}",
            t.tenant, t.accepted, t.shed, t.quota_denied, t.credits_stalled, t.rejected
        );
    }

    // Graceful shutdown: drain, quiesce, and prove conservation.
    let outcome = server.shutdown();
    println!("\n== shutdown ==");
    println!(
        "quiesce: epochs={} clean={} executed={}",
        outcome.quiesce.epochs,
        outcome.quiesce.clean(),
        outcome.quiesce.commands_executed
    );
    let l = outcome.ledger;
    println!(
        "ledger: accepted={} engine_routed={} shed_after_accept={} holds={}",
        l.accepted,
        l.engine_routed,
        l.shed_after_accept,
        l.holds()
    );
    assert!(l.holds(), "serving conservation ledger must balance");
    assert!(outcome.quiesce.clean(), "engine must quiesce cleanly");

    println!("\n== prometheus export (first lines) ==");
    for line in outcome.snapshot.to_prometheus().lines().take(12) {
        println!("{line}");
    }
}
