//! Adaptive load balancing under a skewed, shifting workload.
//!
//! A hotspot concentrates all lookups on a small key range; the monitor
//! detects the imbalance and the configurable load balancer (Section 3.3)
//! repartitions the index — *link* transfers inside a node, *copy*
//! transfers (flatten → stream → rebuild) across nodes.  The example prints
//! the partition boundaries and per-AEU load before and after adaption.
//!
//! ```sh
//! cargo run --release -p eris-bench --example adaptive_rebalancing
//! ```

use eris_core::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn main() {
    let domain: u64 = 1 << 20;
    let mut engine = Engine::new(
        eris_numa::amd_machine(),
        EngineConfig {
            balancer: BalancerConfig {
                enabled: true,
                algorithm: BalanceAlgorithm::OneShot,
                threshold_cv: 0.2,
                period_s: 1e-4,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    let idx = engine.create_index("events", domain);
    engine.bulk_load_index(idx, (0..domain).map(|k| (k, k)));
    let n = engine.num_aeus();
    println!("{} AEUs, {} keys, One-Shot balancer\n", n, domain);

    // Generators draw keys from a hot range published through atomics.
    let hot_lo = Arc::new(AtomicU64::new(0));
    let hot_hi = Arc::new(AtomicU64::new(domain));
    for a in engine.aeu_ids() {
        let (lo, hi) = (Arc::clone(&hot_lo), Arc::clone(&hot_hi));
        let mut x = (a.0 as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        engine.set_generator(
            a,
            Some(Box::new(move |_, out| {
                let (lo, hi) = (lo.load(Ordering::Relaxed), hi.load(Ordering::Relaxed));
                let keys = (0..64)
                    .map(|_| {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        lo + x % (hi - lo)
                    })
                    .collect();
                out.push(DataCommand {
                    object: DataObjectId(0),
                    ticket: 0,
                    payload: Payload::Lookup { keys },
                });
            })),
        );
    }

    let spread = |e: &Engine| -> (u64, u64) {
        let lens: Vec<u64> = e
            .aeu_ids()
            .iter()
            .map(|a| e.aeu(*a).partition(idx).map_or(0, |p| p.data.len() as u64))
            .collect();
        (*lens.iter().min().unwrap(), *lens.iter().max().unwrap())
    };

    // Phase 1: uniform workload.
    let ops = engine.run_for_virtual_secs(2e-3);
    let (lo, hi) = spread(&engine);
    println!(
        "uniform phase : {:>10} lookups, partition sizes {lo}..{hi} keys",
        ops.lookups
    );

    // Phase 2: everything hammers 5% of the domain.
    hot_lo.store(0, Ordering::Relaxed);
    hot_hi.store(domain / 20, Ordering::Relaxed);
    let ops = engine.run_for_virtual_secs(4e-3);
    let (lo, hi) = spread(&engine);
    println!("hotspot phase : {:>10} lookups, partition sizes {lo}..{hi} keys  (dip: transfers in progress)", ops.lookups);

    // Phase 3: same hotspot, after the balancer has adapted.
    let ops = engine.run_for_virtual_secs(2e-3);
    println!(
        "recovered     : {:>10} lookups (hotspot now spread over all AEUs)",
        ops.lookups
    );

    // After adaption, the hot 5% must be owned by many AEUs.
    let hot_owners = {
        let shared_hot = domain / 20;
        let mut owners = std::collections::BTreeSet::new();
        for probe in (0..shared_hot).step_by((shared_hot as usize / 200).max(1)) {
            // Find the owner by asking which AEU's range contains the key.
            for a in engine.aeu_ids() {
                if let Some(p) = engine.aeu(a).partition(idx) {
                    if probe >= p.range.0 && probe < p.range.1 {
                        owners.insert(a.0);
                        break;
                    }
                }
            }
        }
        owners.len()
    };
    println!("\nhot 5% of the domain is now served by {hot_owners} of {n} AEUs");
    assert!(hot_owners > n / 2, "balancer spread the hotspot");

    // Total key count must be preserved exactly across all transfers.
    let total: usize = engine
        .aeu_ids()
        .iter()
        .map(|a| engine.aeu(*a).partition(idx).map_or(0, |p| p.data.len()))
        .sum();
    assert_eq!(
        total as u64, domain,
        "no key lost or duplicated during balancing"
    );
    println!("all {total} keys intact after rebalancing");
}
