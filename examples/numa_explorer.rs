//! Explore the simulated NUMA platforms: topology, distance classes, and
//! what contention does to concurrent memory streams.
//!
//! ```sh
//! cargo run --release -p eris-bench --example numa_explorer
//! ```

use eris_numa::{CostModel, Flow, FlowSolver, NodeId};

fn main() {
    for topo in [
        eris_numa::intel_machine(),
        eris_numa::amd_machine(),
        eris_numa::sgi_machine(),
    ] {
        println!("=== {} ===", topo.name());
        println!(
            "{} nodes x {} cores, {} GiB, {} links, aggregate local bandwidth {:.1} GB/s",
            topo.num_nodes(),
            topo.cores_of_node(NodeId(0)).len(),
            topo.total_memory_gib(),
            topo.links().len(),
            topo.aggregate_local_bandwidth_gbps(),
        );

        let cm = CostModel::new(&topo);
        println!("distance classes (Table 2):");
        for row in cm.table2_rows() {
            println!(
                "  {:26} {:5.1} GB/s  {:4.0} ns",
                row.class.label(),
                row.bandwidth_gbps,
                row.latency_ns
            );
        }

        // Contention demo: every node streaming from node 0 (a "Single
        // RAM" hotspot) vs. every node streaming locally.
        let solver = FlowSolver::new(&topo);
        let hotspot: Vec<Flow> = topo
            .nodes()
            .map(|n| Flow::new(n, NodeId(0), 1 << 20))
            .collect();
        let local: Vec<Flow> = topo.nodes().map(|n| Flow::new(n, n, 1 << 20)).collect();
        let total = |flows: &[Flow]| -> f64 { solver.solve(flows).rates.iter().sum() };
        println!(
            "all-nodes hotspot read: {:6.1} GB/s   all-local read: {:7.1} GB/s\n",
            total(&hotspot),
            total(&local)
        );
    }

    println!("(the gap between those two numbers is why ERIS exists)");
}
